#include "astore/segment_ring.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "sim/race_detector.h"

namespace vedb::astore {

SegmentRing::SegmentRing(AStoreClient* client, Options options,
                         std::vector<SegmentHandlePtr> segments)
    : client_(client),
      options_(options),
      segments_(std::move(segments)),
      slot_start_lsn_(segments_.size(), 0),
      slot_last_lsn_(segments_.size(), 0),
      slot_used_(segments_.size(), false) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  appends_ = reg.GetCounter("astore.ring.appends");
  append_ns_ = reg.GetHistogram("astore.ring.append_ns");
  replacements_ = reg.GetCounter("astore.ring.replacements");
  trims_ = reg.GetCounter("astore.ring.trims");
}

std::string SegmentRing::EncodeHeader(SegmentStatus status,
                                      uint64_t start_lsn) {
  std::string h;
  PutFixed32(&h, kHeaderMagic);
  PutFixed32(&h, static_cast<uint32_t>(status));
  PutFixed64(&h, start_lsn);
  PutFixed32(&h, MaskCrc(Crc32c(Slice(h))));
  return h;
}

bool SegmentRing::DecodeHeader(Slice in, SegmentStatus* status,
                               uint64_t* start_lsn) {
  if (in.size() < 20) return false;
  if (DecodeFixed32(in.data()) != kHeaderMagic) return false;
  const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(in.data() + 16));
  if (stored_crc != Crc32c(0, in.data(), 16)) return false;
  *status = static_cast<SegmentStatus>(DecodeFixed32(in.data() + 4));
  *start_lsn = DecodeFixed64(in.data() + 8);
  return true;
}

Result<std::unique_ptr<SegmentRing>> SegmentRing::Create(
    AStoreClient* client, const Options& options) {
  std::vector<SegmentHandlePtr> segments;
  for (int i = 0; i < options.ring_size; ++i) {
    VEDB_ASSIGN_OR_RETURN(
        SegmentHandlePtr seg,
        client->CreateSegment(options.segment_size, options.replication));
    // Stamp every segment empty so recovery can tell "never used" from
    // garbage.
    VEDB_RETURN_IF_ERROR(client->WriteAt(
        seg, 0, EncodeHeader(SegmentStatus::kEmpty, 0)));
    segments.push_back(std::move(seg));
  }
  return std::unique_ptr<SegmentRing>(
      new SegmentRing(client, options, std::move(segments)));
}

std::vector<SegmentId> SegmentRing::segment_ids() const {
  vedb::MutexLock lk(&mu_);
  sim::RaceAnnotate(&segments_, sizeof(segments_), /*is_write=*/false,
                    "SegmentRing::segment_ids");
  std::vector<SegmentId> ids;
  ids.reserve(segments_.size());
  for (const auto& seg : segments_) ids.push_back(seg->id());
  return ids;
}

Status SegmentRing::ReplaceSegmentSlot(size_t idx,
                                       const SegmentHandlePtr& broken) {
  // "The storage SDK will close the failed segment, create a new segment,
  // and automatically retry" (Section V-E). The broken segment is left
  // alive (frozen) so already-acked records stay readable for recovery.
  VEDB_ASSIGN_OR_RETURN(
      SegmentHandlePtr fresh,
      client_->CreateSegment(options_.segment_size, options_.replication));
  VEDB_RETURN_IF_ERROR(
      client_->WriteAt(fresh, 0, EncodeHeader(SegmentStatus::kEmpty, 0)));
  vedb::MutexLock lk(&mu_);
  sim::RaceAnnotate(&cur_offset_, sizeof(cur_offset_), /*is_write=*/true,
                    "SegmentRing::ReplaceSegmentSlot");
  sim::RaceAnnotate(&segments_, sizeof(segments_), /*is_write=*/true,
                    "SegmentRing::ReplaceSegmentSlot");
  if (segments_[idx] == broken) {
    segments_[idx] = std::move(fresh);
    slot_start_lsn_[idx] = 0;
    slot_last_lsn_[idx] = 0;
    slot_used_[idx] = false;
    replaced_++;
    replacements_->Add(1);
    if (idx == cur_idx_) {
      cur_offset_ = kHeaderSize;
      cur_initialized_ = false;
    }
  }
  return Status::OK();
}

Result<SegmentRing::Reservation> SegmentRing::Reserve(uint64_t lsn,
                                                      size_t payload_size) {
  // API-boundary validation: an empty payload would frame as a zero-length
  // record, which the recovery scan cannot distinguish from the
  // end-of-durable-log sentinel — callers used to be trusted not to do
  // this; now it is a typed error here.
  if (payload_size == 0) {
    return Status::InvalidArgument("zero-length record");
  }
  const size_t frame_size = payload_size + PackedFrame::kHeaderSize;
  // `>=`, not `>`: a frame that exactly fills the data area would wrap the
  // ring on EVERY append — one segment per record defeats both coalescing
  // and retention, and TrimBefore's replacement path re-stamps fresh
  // headers without re-validating record sizes, so this boundary is the
  // only gate.
  if (frame_size >= options_.segment_size - kHeaderSize) {
    return Status::InvalidArgument("record larger than a segment");
  }
  Reservation r;
  r.frame_size = frame_size;
  vedb::MutexLock lk(&mu_);
  // The ring cursor (cur_idx_/cur_offset_/slot_start_lsn_) is the hot
  // shared state of the log write path; an unsynchronized reservation
  // would hand two records the same bytes.
  sim::RaceAnnotate(&cur_offset_, sizeof(cur_offset_), /*is_write=*/true,
                    "SegmentRing::Reserve");
  if (cur_offset_ + frame_size > options_.segment_size) {
    // Advance the ring: freeze the current slot, recycle the next. Checked
    // before any cursor mutation so a refused reservation leaves the ring
    // exactly as it was.
    const size_t next_idx = (cur_idx_ + 1) % segments_.size();
    if (options_.forbid_overwrite && slot_used_[next_idx]) {
      return Status::NoSpace("ring full; trim before appending");
    }
    r.to_mark_full = segments_[cur_idx_];
    r.full_start_lsn = slot_start_lsn_[cur_idx_];
    cur_idx_ = next_idx;
    cur_offset_ = kHeaderSize;
    cur_initialized_ = false;
  }
  r.slot_idx = cur_idx_;
  r.seg = segments_[cur_idx_];
  r.offset = cur_offset_;
  cur_offset_ += frame_size;
  slot_used_[cur_idx_] = true;
  slot_last_lsn_[cur_idx_] = lsn;
  if (!cur_initialized_) {
    // "Sets its header to the start LSN of the current REDO log."
    r.init_header = true;
    cur_initialized_ = true;
    slot_start_lsn_[cur_idx_] = lsn;
  }
  return r;
}

Result<int> SegmentRing::TrimBefore(uint64_t trim_lsn) {
  // Snapshot the freeable slots under the lock, do the I/O outside it.
  struct Victim {
    size_t idx;
    SegmentHandlePtr seg;
  };
  std::vector<Victim> victims;
  {
    vedb::MutexLock lk(&mu_);
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (i == cur_idx_) continue;  // the open slot is never trimmed
      if (slot_used_[i] && slot_last_lsn_[i] < trim_lsn) {
        victims.push_back(Victim{i, segments_[i]});
      }
    }
  }
  int freed = 0;
  for (const Victim& v : victims) {
    // Pre-create the replacement so the ring never shrinks, then free the
    // old segment cluster-wide through the CM delete protocol.
    VEDB_ASSIGN_OR_RETURN(
        SegmentHandlePtr fresh,
        client_->CreateSegment(options_.segment_size, options_.replication));
    VEDB_RETURN_IF_ERROR(
        client_->WriteAt(fresh, 0, EncodeHeader(SegmentStatus::kEmpty, 0)));
    VEDB_RETURN_IF_ERROR(client_->Delete(v.seg));
    bool swapped = false;
    {
      vedb::MutexLock lk(&mu_);
      sim::RaceAnnotate(&segments_, sizeof(segments_), /*is_write=*/true,
                        "SegmentRing::TrimBefore");
      if (segments_[v.idx] == v.seg) {  // not concurrently replaced
        segments_[v.idx] = fresh;
        slot_start_lsn_[v.idx] = 0;
        slot_last_lsn_[v.idx] = 0;
        slot_used_[v.idx] = false;
        trimmed_++;
        trims_->Add(1);
        freed++;
        swapped = true;
      }
    }
    if (!swapped) {
      // discard-ok: the slot was concurrently replaced; drop the spare
      // segment rather than leak it, tolerating a failed delete.
      (void)client_->Delete(fresh);
    }
  }
  return freed;
}

Result<SegmentRing::PendingCommitPtr> SegmentRing::SubmitReserved(
    const Reservation& reservation, uint64_t lsn, Slice payload) {
  VEDB_CHECK(
      reservation.frame_size == payload.size() + PackedFrame::kHeaderSize,
      "reservation size mismatch");
  // QoS admission for the framed bytes, strictly before any astore lock
  // (this is what the old WriteAt-based path charged per record; the
  // batched path must not silently unmeter topic producers). The ticket
  // rides inside the ring entry so in-flight accounting spans the async
  // lifetime.
  qos::Ticket ticket;
  if (client_->options().admission != nullptr) {
    VEDB_ASSIGN_OR_RETURN(
        ticket, client_->options().admission->Admit(
                    client_->options().tenant, reservation.frame_size));
  }

  auto pending = std::make_unique<PendingCommit>();
  pending->reservation = reservation;
  pending->lsn = lsn;
  pending->begin = client_->env()->clock()->Now();
  PackedFrame::EncodeHeader(pending->frame_header, lsn, payload);

  // Crash-ordering contract (torn chains apply a strict WR prefix): the
  // kInUse header precedes the frame — a record must never exist in a
  // segment whose header does not route recovery to it — and the frame
  // header precedes the payload, so a torn record fails its CRC.
  std::vector<RecordPiece> pieces;
  pieces.reserve(3);
  if (reservation.init_header) {
    pending->init_header = EncodeHeader(SegmentStatus::kInUse, lsn);
    pieces.push_back(RecordPiece{0, Slice(pending->init_header)});
  }
  pieces.push_back(RecordPiece{
      reservation.offset,
      Slice(pending->frame_header, PackedFrame::kHeaderSize)});
  pieces.push_back(
      RecordPiece{reservation.offset + PackedFrame::kPayloadOffset, payload});
  VEDB_ASSIGN_OR_RETURN(
      pending->token,
      client_->append_ring()->Submit(reservation.seg, std::move(pieces),
                                     std::move(ticket)));
  return pending;
}

Status SegmentRing::WaitCommit(PendingCommitPtr pending) {
  VEDB_CHECK(pending != nullptr, "WaitCommit on a null pending commit");
  Status s = client_->append_ring()->Wait(pending->token);
  const Reservation& reservation = pending->reservation;
  const SegmentHandlePtr& seg = reservation.seg;
  if (s.ok()) {
    // Commit point: the LSN becomes visible as durable once we return OK,
    // so the frame must be in the persistence domain on every replica.
    // This is logstore's commit-path persist-ordering check.
    VEDB_RETURN_IF_ERROR(client_->VerifyPersisted(
        seg, reservation.offset, reservation.frame_size, "logstore.commit"));
    if (reservation.to_mark_full != nullptr) {
      // Stamped strictly AFTER the wrapping record is durable. The old
      // path stamped first, so a crash between the stamp and the record
      // marked a segment kFull while its successor held nothing — under
      // doorbell coalescing that window covers the whole batch.
      // discard-ok: best effort; a lingering "in-use" status is tolerated
      // by recovery.
      (void)client_->WriteAt(
          reservation.to_mark_full, 0,
          EncodeHeader(SegmentStatus::kFull, reservation.full_start_lsn));
    }
    appends_->Add(1);
    append_ns_->Observe(client_->env()->clock()->Now() - pending->begin);
    return s;
  }
  if (!s.IsUnavailable() && !s.IsStale()) return s;

  // Freeze-and-reopen (Section V-E): swap the broken slot for a fresh
  // segment, then have the caller retry through the normal reserve+commit
  // path. Concurrent in-flight records on the broken segment fail and
  // repair the same way; the replacement is idempotent (only the first
  // swapper wins).
  bool found = false;
  size_t idx = 0;
  {
    vedb::MutexLock lk(&mu_);
    sim::RaceAnnotate(&segments_, sizeof(segments_), /*is_write=*/false,
                      "SegmentRing::WaitCommit");
    auto it = std::find(segments_.begin(), segments_.end(), seg);
    if (it != segments_.end()) {
      found = true;
      idx = static_cast<size_t>(it - segments_.begin());
    }
  }
  if (found) {
    VEDB_RETURN_IF_ERROR(ReplaceSegmentSlot(idx, seg));
  }
  return Status::Busy("segment replaced; retry the append");
}

Status SegmentRing::CommitReserved(const Reservation& reservation,
                                   uint64_t lsn, Slice payload) {
  VEDB_ASSIGN_OR_RETURN(PendingCommitPtr pending,
                        SubmitReserved(reservation, lsn, payload));
  return WaitCommit(std::move(pending));
}

Status SegmentRing::AppendRecord(uint64_t lsn, Slice payload) {
  Status s;
  for (int attempt = 0; attempt < 3; ++attempt) {
    VEDB_ASSIGN_OR_RETURN(Reservation r, Reserve(lsn, payload.size()));
    s = CommitReserved(r, lsn, payload);
    if (!s.IsBusy()) return s;
  }
  return Status::Unavailable("log append failed after segment replacements");
}

namespace {

/// Result of parsing one copy of a segment's data area.
struct ParsedFrames {
  uint64_t next_lsn = 0;
  /// Segment-relative offset one past the last valid frame (the point
  /// where this copy's durable prefix ends).
  uint64_t valid_end = SegmentRing::kHeaderSize;
};

ParsedFrames ParseFrames(Slice buf, uint64_t from_lsn, uint64_t start_lsn,
                         SegmentId seg_id, std::vector<LogRecord>* out,
                         std::vector<SegmentRing::RecordLocation>* locs) {
  ParsedFrames p;
  uint64_t prev_lsn = 0;
  uint64_t offset = SegmentRing::kHeaderSize;  // frame offset in the segment
  Slice in = buf;
  while (in.size() >= PackedFrame::kHeaderSize) {
    const PackedFrame f = PackedFrame::DecodeHeader(in.data());
    const uint32_t len = f.payload_len;
    // Zero length is the end-of-durable-log sentinel (never-written PMem);
    // Reserve rejects zero-length records, so no valid frame encodes it.
    if (len == 0) break;
    if (len > in.size() - PackedFrame::kHeaderSize) break;  // torn/past end
    if (!PackedFrame::VerifyCrc(in.data(), len)) break;  // prefix ends here
    const uint64_t lsn = f.lsn;
    // Guard against remnants of a previous ring lap: records must start at
    // the header's start LSN and stay strictly ascending.
    if (lsn < start_lsn || (prev_lsn != 0 && lsn <= prev_lsn)) break;
    if (lsn >= from_lsn && out != nullptr) {
      out->push_back(LogRecord{
          lsn, std::string(in.data() + PackedFrame::kPayloadOffset, len)});
      if (locs != nullptr) {
        locs->push_back(
            SegmentRing::RecordLocation{lsn, seg_id, offset, len});
      }
    }
    prev_lsn = lsn;
    p.next_lsn = lsn + 1;
    offset += PackedFrame::kHeaderSize + len;
    in.RemovePrefix(PackedFrame::kHeaderSize + len);
  }
  p.valid_end = offset;
  return p;
}

}  // namespace

Result<uint64_t> SegmentRing::ScanSegment(AStoreClient* client,
                                          const SegmentHandlePtr& seg,
                                          uint64_t from_lsn,
                                          uint64_t start_lsn,
                                          std::vector<LogRecord>* out,
                                          std::vector<RecordLocation>* locs) {
  const uint64_t data_size = seg->size() - kHeaderSize;
  const SegmentRoute route = seg->route();
  const size_t replicas = route.replicas.size();

  if (replicas <= 1) {
    // Single copy: read the whole data area once, then parse frames.
    std::string buf(data_size, '\0');
    VEDB_RETURN_IF_ERROR(
        client->Read(seg, kHeaderSize, data_size, buf.data()));
    return ParseFrames(Slice(buf), from_lsn, start_lsn, seg->id(), out, locs)
        .next_lsn;
  }

  // Cross-replica scan. Looking at ONE copy, a CRC mismatch mid-log is
  // indistinguishable from the torn tail: a single flipped bit would
  // silently truncate recovery at that record. Reading every copy
  // disambiguates — the longest valid frame prefix wins (a frame durable
  // on any replica was flushed there before its ack, so adopting it can
  // only extend the log with genuinely persisted records) — and copies
  // whose prefix ends earlier are repaired from the winner.
  std::vector<std::string> bufs(replicas);
  std::vector<bool> have(replicas, false);
  std::vector<ParsedFrames> parsed(replicas);
  size_t ok_count = 0;
  for (size_t i = 0; i < replicas; ++i) {
    bufs[i].assign(data_size, '\0');
    Status s =
        client->ReadReplica(seg, i, kHeaderSize, data_size, bufs[i].data());
    if (!s.ok()) continue;  // dead node: recover from the copies we have
    have[i] = true;
    ok_count++;
    parsed[i] = ParseFrames(Slice(bufs[i]), from_lsn, start_lsn, seg->id(),
                            nullptr, nullptr);
  }
  if (ok_count == 0) {
    // Every direct replica read failed (nodes down, route mid-rebuild):
    // fall back to the failover+retry read path.
    std::string buf(data_size, '\0');
    VEDB_RETURN_IF_ERROR(
        client->Read(seg, kHeaderSize, data_size, buf.data()));
    return ParseFrames(Slice(buf), from_lsn, start_lsn, seg->id(), out, locs)
        .next_lsn;
  }
  size_t winner = 0;
  bool first = true;
  for (size_t i = 0; i < replicas; ++i) {
    if (have[i] && (first || parsed[i].valid_end > parsed[winner].valid_end)) {
      winner = i;
      first = false;
    }
  }
  const ParsedFrames best = ParseFrames(Slice(bufs[winner]), from_lsn,
                                        start_lsn, seg->id(), out, locs);
  // Scan-repair: rewrite the winner's valid prefix over every copy whose
  // own prefix ended earlier (mid-log bit rot or a lost tail). Divergent
  // garbage beyond the winner's prefix is left alone — it is outside the
  // durable log on every copy.
  for (size_t i = 0; i < replicas; ++i) {
    if (!have[i] || i == winner || parsed[i].valid_end >= best.valid_end) {
      continue;
    }
    const uint64_t lo = parsed[i].valid_end;
    Slice patch(bufs[winner].data() + (lo - kHeaderSize),
                best.valid_end - lo);
    Status rs = client->WriteReplica(seg, i, lo, patch, route.epoch);
    if (rs.ok()) {
      obs::MetricsRegistry::Default()
          .GetCounter("astore.repair.scan_repairs")
          ->Add(1);
    }
    // A failed repair (node down, epoch moved) is left for the scrubber.
  }
  return best.next_lsn;
}

Result<SegmentRing::Recovered> SegmentRing::Recover(
    AStoreClient* client, const std::vector<SegmentId>& segment_ids,
    uint64_t from_lsn, const Options& options) {
  (void)options;
  struct Opened {
    SegmentHandlePtr seg;
    SegmentStatus status = SegmentStatus::kEmpty;
    uint64_t start_lsn = 0;
  };
  // Header reads are verified: a single replica serving a rotted header
  // must not make a live segment look unusable, so the read fails over to
  // a copy whose header decodes (and repairs the bad copy). Only when NO
  // copy has a valid header (DataLoss) is the segment classed kError —
  // the same conclusion a garbage header produced before.
  ReadOptions hdr_opts;
  hdr_opts.verify = [](Slice b) {
    SegmentStatus st;
    uint64_t sl;
    return DecodeHeader(b, &st, &sl)
               ? Status::OK()
               : Status::Corruption("segment header fails magic/CRC");
  };
  std::vector<Opened> ring;
  for (SegmentId id : segment_ids) {
    VEDB_ASSIGN_OR_RETURN(SegmentHandlePtr seg, client->OpenSegment(id));
    char hdr[kHeaderSize];
    Status hs = client->ReadVerified(seg, 0, kHeaderSize, hdr, hdr_opts);
    Opened o;
    o.seg = std::move(seg);
    if (hs.ok()) {
      VEDB_CHECK(DecodeHeader(Slice(hdr, kHeaderSize), &o.status,
                              &o.start_lsn),
                 "verified header failed to decode");
    } else if (hs.IsDataLoss()) {
      o.status = SegmentStatus::kError;  // garbage on every copy: unusable
    } else {
      return hs;
    }
    ring.push_back(std::move(o));
  }

  // "A binary search can be performed on all headers in the SegmentRing and
  // it can efficiently identify the largest LSN." Non-empty start LSNs form
  // a rotated ascending sequence in ring order; find the rotation point.
  auto used = [&](const Opened& o) {
    return o.status == SegmentStatus::kInUse || o.status == SegmentStatus::kFull;
  };
  int latest = -1;
  size_t used_count = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    if (used(ring[i])) used_count++;
  }
  if (used_count > 0) {
    // Binary search over the contiguous used prefix-in-ring-order. On a
    // ring that has not wrapped, the used segments are a prefix with
    // ascending LSNs: the answer is the last used one. After wrapping,
    // every slot is used and LSNs are a rotated ascending sequence.
    if (used_count < ring.size()) {
      // Not yet wrapped: last used slot holds the largest start LSN.
      size_t lo = 0, hi = ring.size() - 1;
      while (lo < hi) {
        size_t mid = (lo + hi + 1) / 2;
        if (used(ring[mid])) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      // Guard against replaced/irregular rings where used slots are not a
      // prefix: verify, else fall back to a linear pass.
      if (used(ring[lo]) && (lo + 1 == ring.size() || !used(ring[lo + 1]))) {
        latest = static_cast<int>(lo);
      }
    } else {
      // Wrapped: find rotation point (first slot whose LSN is smaller than
      // its predecessor's); the predecessor holds the max.
      size_t lo = 0, hi = ring.size() - 1;
      if (ring[lo].start_lsn <= ring[hi].start_lsn) {
        latest = static_cast<int>(hi);  // fully sorted: last one
      } else {
        while (lo < hi) {
          size_t mid = (lo + hi) / 2;
          if (ring[mid].start_lsn >= ring[0].start_lsn) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        latest = static_cast<int>(lo) - 1;
      }
    }
    if (latest < 0 || !used(ring[latest])) {
      // Fallback linear scan (robust to replaced slots).
      uint64_t best = 0;
      for (size_t i = 0; i < ring.size(); ++i) {
        if (used(ring[i]) && ring[i].start_lsn >= best) {
          best = ring[i].start_lsn;
          latest = static_cast<int>(i);
        }
      }
    }
  }

  Recovered result;
  if (latest < 0) return result;  // empty log

  // Collect records from every used segment whose records can be >= from_lsn,
  // in LSN order: sort used segments by start LSN.
  std::vector<const Opened*> ordered;
  for (const auto& o : ring) {
    if (used(o)) ordered.push_back(&o);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Opened* a, const Opened* b) {
              return a->start_lsn < b->start_lsn;
            });
  // Drop stale generations: segments whose start LSN is greater than a
  // later ring position's are from an older lap. With ascending LSNs this
  // reduces to: scan in LSN order, keep all (older laps were overwritten).
  for (const Opened* o : ordered) {
    VEDB_ASSIGN_OR_RETURN(
        uint64_t seg_next,
        ScanSegment(client, o->seg, from_lsn, o->start_lsn,
                    &result.records, &result.locations));
    result.next_lsn = std::max(result.next_lsn, seg_next);
  }
  // Keep records and their locations parallel while ordering by LSN.
  std::vector<size_t> order(result.records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.records[a].lsn < result.records[b].lsn;
  });
  std::vector<LogRecord> records;
  std::vector<RecordLocation> locations;
  records.reserve(order.size());
  locations.reserve(order.size());
  for (size_t i : order) {
    records.push_back(std::move(result.records[i]));
    locations.push_back(result.locations[i]);
  }
  result.records = std::move(records);
  result.locations = std::move(locations);
  return result;
}

}  // namespace vedb::astore
