// Async submission/completion ring with cross-client doorbell coalescing.
//
// The Table-2 breakdown showed the client SDK — not the simulated PMem —
// dominating per-append cost: every append paid its own WR construction,
// its own doorbell, and its own CQ poll. The AppendRing amortizes all
// three. Producers Submit() fully-framed record pieces (offsets already
// reserved, e.g. by SegmentRing::Reserve) and get back a completion token;
// a leader drains the queue and posts the records of each segment as ONE
// chained-WR doorbell (net::RdmaFabric::PostChainMulti), so N independent
// appends share a single `doorbell_cost` and a single flush READ per
// replica.
//
// Leader/follower, no dedicated actor: the first Wait()er whose token is
// unresolved becomes the flush leader (same shape as
// logstore::GroupCommitter), which keeps the ring usable from guest
// threads — test mains that never registered with the virtual clock.
//
// Ordering: the queue drains strictly in submission (seq) order and the
// leader resolves a whole drained run before any later submission, so
// completions are delivered in LSN order whenever producers submit in LSN
// order (SegmentRing reserves under its ring lock, so they do).
//
// Coalescing is safe under the PersistChecker's ack-ordering rule because
// the per-doorbell flush READ is ordered after every record WR in the
// chain: no token resolves OK before its record's bytes are in the
// persistence domain on every replica (WriteRecordGroup re-verifies via
// VerifyPersisted before returning).

#ifndef VEDB_ASTORE_APPEND_RING_H_
#define VEDB_ASTORE_APPEND_RING_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "qos/admission.h"
#include "sim/clock.h"

namespace vedb::astore {

class AStoreClient;
class SegmentHandle;
using SegmentHandlePtr = std::shared_ptr<SegmentHandle>;

/// One WR's worth of a record: `data` lands at segment-relative `offset`.
/// A packed record is two pieces — the 16-byte frame header and the
/// caller's payload — both referencing caller-owned memory that must stay
/// alive until the submission's token resolves. No byte is ever copied
/// into the ring.
struct RecordPiece {
  uint64_t offset = 0;
  Slice data;
};

struct AppendRingOptions {
  /// How long a flush leader lingers (virtual time) for more submissions
  /// to join its doorbell before draining. 0 = drain immediately; the
  /// leader still coalesces everything already queued, so concurrent
  /// producers batch even with no window.
  Duration nagle_window = 0;
  /// A drained run is split into doorbells of at most this many payload
  /// bytes. Also the queue depth at which a lingering leader drains early.
  uint64_t batch_byte_cap = 256 * kKiB;
  /// ... and at most this many records per doorbell.
  size_t max_batch_records = 64;
  /// Client software cost per record in a batched post (WR assembly for
  /// header+payload). Replaces the monolithic per-op write_sdk_overhead.
  Duration submit_overhead = 2 * kMicrosecond;
  /// Client software cost per doorbell (ring the NIC, reap one CQ entry
  /// for the whole chain).
  Duration completion_overhead = 1 * kMicrosecond;
};

/// See file comment. Owned by AStoreClient (one ring per client SDK
/// instance); thread safe.
class AppendRing {
 public:
  using Token = uint64_t;

  AppendRing(AStoreClient* client, const AppendRingOptions& options);

  /// Enqueues one record (as pieces) against `handle` and returns its
  /// completion token. `ticket` rides along and is released when the
  /// record's doorbell resolves — QoS in-flight accounting brackets the
  /// whole async lifetime, not just submission. Validates every piece
  /// against the segment bounds; the pieces' bytes must stay alive until
  /// Wait(token) returns.
  Result<Token> Submit(SegmentHandlePtr handle,
                       std::vector<RecordPiece> pieces,
                       qos::Ticket ticket = {});

  /// Blocks until `token`'s doorbell resolves and returns the record's
  /// status. Each token resolves exactly once; waiting twice on the same
  /// token is a caller bug. The calling thread may be drafted as the
  /// flush leader for its own and other producers' submissions.
  Status Wait(Token token);

  /// Submissions currently queued (for tests).
  size_t QueuedForTest() const {
    vedb::MutexLock lk(&mu_);
    return pending_.size();
  }

 private:
  struct Entry {
    uint64_t seq = 0;
    SegmentHandlePtr handle;
    std::vector<RecordPiece> pieces;
    uint64_t bytes = 0;
    qos::Ticket ticket;
  };

  AStoreClient* client_;
  AppendRingOptions options_;

  mutable vedb::Mutex mu_{"astore.append_ring"};
  sim::VirtualCondition cond_;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::deque<Entry> pending_ GUARDED_BY(mu_);
  uint64_t pending_bytes_ GUARDED_BY(mu_) = 0;
  bool flushing_ GUARDED_BY(mu_) = false;
  std::map<Token, Status> done_ GUARDED_BY(mu_);
};

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_APPEND_RING_H_
