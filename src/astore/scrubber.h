// Background integrity scrubber — one per AStore server. Walks the
// server's live segments on the virtual clock at a bounded byte rate (a
// qos::TokenBucket meters every byte read), cross-checks each chunk against
// the other replicas, repairs a locally divergent copy in place from the
// replica majority, and escalates copies that stay bad after a rewrite
// (latent sticky bad regions) to the cluster manager, which quarantines the
// replica and re-replicates the segment elsewhere.
//
// Detection is comparison-based, not checksum-based: the scrubber has no
// knowledge of the application's framing, so two settled reads per replica
// plus a strict majority vote decide which bytes are right. A chunk whose
// two reads of the same replica disagree is being written concurrently and
// is skipped this round — the next pass sees it settled.

#ifndef VEDB_ASTORE_SCRUBBER_H_
#define VEDB_ASTORE_SCRUBBER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "astore/client.h"
#include "astore/server.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "qos/token_bucket.h"
#include "sim/env.h"

namespace vedb::astore {

class Scrubber {
 public:
  struct Options {
    /// Pause between full passes over the local segment list.
    Duration scrub_period = 100 * kMillisecond;
    /// Bytes compared per vote; also the repair write granularity.
    uint64_t chunk_bytes = 4 * kKiB;
    /// Sustained scrub read rate across ALL replicas' bytes (0 = unpaced).
    /// Rides the qos token bucket, so the scrubber's background reads are
    /// throttled exactly like any metered tenant.
    uint64_t rate_bytes_per_sec = 8 * kMiB;
    uint64_t burst_bytes = 64 * kKiB;
    /// Gap between the two settledness reads of one chunk.
    Duration settle_gap = 500 * kMicrosecond;
  };

  /// `client` is the scrubber's cluster view (routes, per-replica reads,
  /// epoch-guarded repair writes, CM reporting); it should live on the
  /// server's node. `server` is the local server whose copies are scrubbed.
  Scrubber(sim::SimEnvironment* env, AStoreClient* client, AStoreServer* server,
           const Options& options);

  /// Starts the scrub loop on `group`.
  void StartBackground(sim::ActorGroup* group);

  /// Flags the loop to stop without waiting (flag-all-then-drain teardown).
  void RequestShutdown() { shutdown_.store(true); }

  /// Flags and drains: on return the scrub actor has exited its loop.
  void Shutdown();

  /// Runs one full pass over the local segments right now (test hook; the
  /// caller must be a registered actor — scrub reads advance virtual time).
  void ScrubPassForTest() { ScrubPass(); }

 private:
  // Per-chunk verdict of one cross-replica vote.
  enum class ChunkVerdict {
    kClean,      // every settled replica agrees
    kRepaired,   // local copy diverged; rewritten from majority and re-read
    kIrreparable,  // local copy still bad after rewrite (sticky region)
    kSkipped,    // unsettled (concurrent writer) or no usable majority
  };

  void ScrubLoop();
  void ScrubPass();
  // Scrubs one local segment; returns false when the segment was reported
  // to the CM (its route is moving — stop touching it this pass).
  bool ScrubSegment(SegmentId id);
  ChunkVerdict ScrubChunk(const SegmentHandlePtr& handle,
                          const SegmentRoute& route, size_t local_idx,
                          uint64_t offset, uint64_t len);

  sim::SimEnvironment* env_;
  AStoreClient* client_;
  AStoreServer* server_;
  Options options_;
  qos::TokenBucket bucket_;

  // Lock order contracts (declared in the constructor): astore.scrub is
  // held only around the scrubber's own bookkeeping and always before
  // astore.server / cm.state — never the reverse, and never across an RPC.
  mutable vedb::Mutex mu_{"astore.scrub"};
  uint64_t pass_count_ GUARDED_BY(mu_) = 0;

  std::atomic<bool> shutdown_{false};
  // Drain handshake (see ClusterManager::Shutdown for the pattern).
  // Waiver(thread-annotations): bg_active_ is only touched under bg_mu_.
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  int bg_active_ = 0;

  // Observability (resolved once at construction; labels = {node}).
  obs::Counter* chunks_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* mismatches_ = nullptr;
  obs::Counter* repairs_ = nullptr;
  obs::Counter* reports_ = nullptr;
  obs::Counter* skipped_ = nullptr;
};

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_SCRUBBER_H_
