// Cluster-manager replication wire formats. Every control-plane mutation on
// the primary CM becomes one self-validating record — magic, term, sequence
// number, typed payload, CRC32C — shipped over RpcTransport to the standby
// CMs; a standby that falls behind (or just adopted a new term) pulls a full
// CRC-protected snapshot instead of individual records. Both formats reject
// torn or corrupted bytes at decode time, so a standby can never silently
// replay garbage into its route or lease tables.

#ifndef VEDB_ASTORE_CM_RECORD_H_
#define VEDB_ASTORE_CM_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "astore/segment.h"
#include "common/slice.h"
#include "common/units.h"

namespace vedb::astore {

// A term names one primacy interval: `(round << 16) | node_id` of the CM
// that leads it. Terms from different CMs can never collide, and a higher
// round always wins, so comparing raw term values totally orders leaders.
inline uint64_t MakeTerm(uint64_t round, uint32_t node_id) {
  return (round << 16) | (node_id & 0xffff);
}
inline uint64_t TermRound(uint64_t term) { return term >> 16; }
inline uint32_t TermNodeId(uint64_t term) {
  return static_cast<uint32_t>(term & 0xffff);
}

enum class CmRecordType : uint8_t {
  kLease = 1,        // lease granted/renewed: (client, expiry)
  kLeasePrune = 2,   // all leases with expiry <= cutoff dropped
  kRouteUpsert = 3,  // full route replace; also commits a pending create
  kRouteErase = 4,   // route dropped (delete, or an aborted create)
  kCreateBegin = 5,  // segment id reserved before its allocations start
};

/// One replicated state change. Which payload fields are meaningful depends
/// on `type`; unused fields stay zero so records compare and encode
/// deterministically.
struct CmRecord {
  uint64_t term = 0;
  uint64_t seq = 0;  // dense per-stream sequence, continues across terms
  CmRecordType type = CmRecordType::kLease;
  ClientId client = 0;     // kLease
  Timestamp expiry = 0;    // kLease
  Timestamp cutoff = 0;    // kLeasePrune
  SegmentRoute route;      // kRouteUpsert
  SegmentId segment = 0;   // kRouteErase / kCreateBegin
};

/// Appends the record in wire form:
///   magic(4) | term(8) | seq(8) | type(1) | payload_len(4) | payload |
///   crc32c(4, over everything before it)
void EncodeCmRecord(std::string* out, const CmRecord& rec);

/// Decodes one record from the front of `in`, advancing it. Returns false
/// on bad magic, truncation, unknown type, or CRC mismatch.
bool DecodeCmRecord(Slice* in, CmRecord* rec);

/// Full CM state transfer: what a standby installs wholesale when it cannot
/// (or should not) catch up record by record.
struct CmSnapshot {
  uint64_t term = 0;
  uint32_t leader_id = 0;
  uint64_t last_seq = 0;  // the stream position this snapshot captures
  SegmentId next_segment_id = 1;
  std::vector<SegmentRoute> routes;                    // sorted by id
  std::vector<std::pair<ClientId, Timestamp>> leases;  // sorted by client
  std::vector<SegmentId> pending_creates;              // sorted
};

/// Appends the snapshot in wire form (magic, header, routes, leases,
/// pending creates, trailing CRC32C over everything before it).
void EncodeCmSnapshot(std::string* out, const CmSnapshot& snap);

/// Decodes a snapshot from the front of `in`, advancing it. Returns false
/// on bad magic, truncation, or CRC mismatch.
bool DecodeCmSnapshot(Slice* in, CmSnapshot* snap);

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_CM_RECORD_H_
