// AStore Server (Section IV-A). Manages one node's PMem resources: the
// on-PMem layout (superblock, segment meta, io-meta, segment storage), a
// bitmap extent allocator, registration of the full PMem range with the
// RDMA NIC, heartbeats to the cluster manager, and the deferred cleaning of
// released segments that underpins the stale-route protocol (Section IV-C).
//
// The data plane never runs through this class: clients reach the PMem
// directly with one-sided RDMA. Only the control plane (alloc/release/
// rebuild) and background tasks use the server's CPU.

#ifndef VEDB_ASTORE_SERVER_H_
#define VEDB_ASTORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "astore/segment.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/rdma.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "pmem/pmem_device.h"
#include "sim/env.h"

namespace vedb::astore {

/// On-PMem layout constants.
struct ServerLayout {
  static constexpr uint64_t kSuperblockSize = 4 * kKiB;
  /// Per-segment metadata slot: bytes [0,24) hold the server's segment-meta
  /// (id, base, size), bytes [32,64) are the client-written io-meta area.
  static constexpr uint64_t kIoMetaSlotSize = 64;
  static constexpr uint64_t kIoMetaClientOffset = 32;
  /// Allocation granularity of the bitmap allocator.
  static constexpr uint64_t kExtentSize = 64 * kKiB;
};

class AStoreServer {
 public:
  struct Options {
    /// Total PMem capacity of this node (paper: 1TB Optane; scaled down).
    uint64_t pmem_capacity = 64 * kMiB;
    /// Maximum concurrently allocated segments (sizes the io-meta area).
    uint32_t max_segments = 1024;
    /// Platform DDIO setting. The shipped configuration is `false`
    /// (Section IV-B): RDMA READ then flushes writes to the persistence
    /// domain.
    bool ddio_enabled = false;
    /// How long a released segment lingers before its extents are reused.
    /// Must be much longer than the clients' route refresh interval.
    Duration cleaning_interval = 400 * kMillisecond;
    /// Period of the background cleaning/heartbeat task.
    Duration background_period = 50 * kMillisecond;
    /// CPU cost of one alloc/release request.
    Duration control_op_cost = 30 * kMicrosecond;
  };

  /// Creates the server on `node`, registers its PMem with the fabric and
  /// its control services ("astore.alloc", "astore.release", "astore.pull")
  /// with the RPC plane.
  AStoreServer(sim::SimEnvironment* env, net::RpcTransport* rpc,
               net::RdmaFabric* fabric, sim::SimNode* node,
               const Options& options);

  /// Starts the background cleaning task on `group`. Heartbeats are driven
  /// by the cluster manager's polling in this implementation.
  void StartBackground(sim::ActorGroup* group);

  /// Requests the background task to exit at its next tick.
  void Shutdown() { shutdown_.store(true); }

  sim::SimNode* node() { return node_; }
  pmem::PmemDevice* pmem() { return pmem_.get(); }
  net::MemoryRegionId region() const { return region_; }

  /// Free capacity in bytes (for CM placement decisions).
  uint64_t FreeCapacity() const;
  /// Number of live (allocated, not pending-clean) segments.
  size_t LiveSegmentCount() const;
  /// True if `segment` currently has storage on this server.
  bool HasSegment(SegmentId id) const;
  /// Like HasSegment but also counts pending-clean copies: the extents are
  /// still occupied until the deferred cleaner runs, so an Allocate of the
  /// same id here would fail. Placement code (CM rebuilds) uses this.
  bool HoldsSegmentStorage(SegmentId id) const;

  /// Ids of all live (not pending-clean) local segments, ascending. The
  /// scrubber walks this list; ascending order keeps its schedule — and
  /// therefore every seeded run — deterministic.
  std::vector<SegmentId> LiveSegmentIds() const;

  /// Local placement of a live segment: {data base offset, size}. Used by
  /// co-located agents (e.g. the EBP recovery scan) that read the PMem
  /// directly.
  Result<std::pair<uint64_t, uint64_t>> GetLocalSegment(SegmentId id) const;

  /// Allocates space for a segment locally (also reachable via RPC).
  /// Returns the base offset of the data area.
  Result<ReplicaLocation> Allocate(SegmentId id, uint64_t size);

  /// Marks a segment released. Space is NOT reused until the cleaning
  /// interval elapses, so clients with a stale route cannot read another
  /// segment's bytes in the meantime.
  Status Release(SegmentId id);

  /// Immediately frees everything pending (test hook; simulates the
  /// cleaning deadline passing).
  void ForceClean();

  /// The replica location of a live local segment (for re-attachment after
  /// a server restart).
  Result<ReplicaLocation> LocationOf(SegmentId id) const;

  /// Simulates an AStore server *process* crash: all in-memory state
  /// (segment table, allocator bitmap) is lost; the PMem contents survive
  /// (power stayed on). Callers typically also SetAlive(false) the node.
  void CrashProcess();

  /// Recovers the in-memory segment table and allocator from the
  /// segment-meta records persisted in PMem — the paper's future-work item
  /// "leverage PMem persistency to recover EBP [data] locally when an
  /// AStore server fails", implemented. Returns recovered segment count.
  Result<size_t> RestartFromPmem();

 private:
  struct LocalSegment {
    uint64_t base = 0;   // byte offset of data area in PMem
    uint64_t size = 0;   // data area size (extent aligned)
    uint32_t io_meta_slot = 0;
    bool pending_clean = false;
    Timestamp clean_deadline = 0;
  };

  Status HandleAlloc(Slice request, std::string* response);
  Status HandleRelease(Slice request, std::string* response);
  Status HandlePull(Slice request, std::string* response);
  void BackgroundLoop();
  void CleanExpiredLocked(Timestamp now) REQUIRES(mu_);

  // Bitmap allocator over extents; first-fit contiguous run.
  Result<uint64_t> AllocExtentsLocked(uint64_t bytes) REQUIRES(mu_);
  void FreeExtentsLocked(uint64_t base, uint64_t bytes) REQUIRES(mu_);

  sim::SimEnvironment* env_;
  net::RpcTransport* rpc_;
  net::RdmaFabric* fabric_;
  sim::SimNode* node_;
  Options options_;

  std::unique_ptr<pmem::PmemDevice> pmem_;
  net::MemoryRegionId region_;
  uint64_t storage_base_ = 0;  // start of the extent-managed area

  // Lock order: astore.server is acquired under cm.state (the CM's health
  // sweep and placement call the accessors above while holding its lock),
  // so code under astore.server must never call into the CM.
  mutable vedb::Mutex mu_{"astore.server"};
  std::vector<bool> extent_used_ GUARDED_BY(mu_);
  std::map<SegmentId, LocalSegment> segments_ GUARDED_BY(mu_);
  uint32_t next_io_meta_slot_ GUARDED_BY(mu_) = 0;

  std::atomic<bool> shutdown_{false};

  // Observability (resolved once at construction; see obs/metrics.h).
  obs::Counter* allocs_ = nullptr;
  obs::Counter* releases_ = nullptr;
  obs::Gauge* live_segments_ = nullptr;
};

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_SERVER_H_
