#include "astore/client.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace vedb::astore {

namespace {

// Low-cardinality cause label for the retry counter: the status code only,
// never the message (messages embed node names and offsets).
const char* CauseLabel(const Status& s) {
  switch (s.code()) {
    case Status::Code::kUnavailable: return "unavailable";
    case Status::Code::kStale: return "stale";
    case Status::Code::kTimedOut: return "timed_out";
    case Status::Code::kIOError: return "io_error";
    case Status::Code::kBusy: return "busy";
    case Status::Code::kDataLoss: return "data_loss";
    default: return "other";
  }
}

}  // namespace

AStoreClient::AStoreClient(sim::SimEnvironment* env, net::RpcTransport* rpc,
                           net::RdmaFabric* fabric, sim::SimNode* cm_node,
                           sim::SimNode* client_node, ClientId client_id,
                           const Options& options)
    : env_(env),
      rpc_(rpc),
      fabric_(fabric),
      client_node_(client_node),
      client_id_(client_id),
      options_(options),
      cm_endpoints_({cm_node}),
      retry_rng_(0x9e3779b97f4a7c15ull ^ client_id) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  writes_ = reg.GetCounter("astore.client.writes");
  write_bytes_ = reg.GetCounter("astore.client.write_bytes");
  write_ns_ = reg.GetHistogram("astore.client.write_ns");
  reads_ = reg.GetCounter("astore.client.reads");
  read_ns_ = reg.GetHistogram("astore.client.read_ns");
  route_refreshes_ = reg.GetCounter("astore.client.route_refreshes");
  unfreezes_ = reg.GetCounter("astore.client.unfreezes");
  cm_failovers_ = reg.GetCounter("astore.client.cm_failovers");
  corrupt_reads_ = reg.GetCounter("astore.client.corrupt_reads");
  read_repairs_ = reg.GetCounter("astore.repair.read_repairs");
  ring_doorbells_ = reg.GetCounter("ring.doorbells");
  doorbell_batch_ = reg.GetHistogram("ring.doorbell_batch");
  coalesced_appends_ = reg.GetCounter("astore.client.coalesced_appends");
  append_ring_ =
      std::make_unique<AppendRing>(this, options_.append_ring);
}

void AStoreClient::SetCmEndpoints(std::vector<sim::SimNode*> endpoints) {
  VEDB_CHECK(!endpoints.empty(), "client needs at least one CM endpoint");
  cm_endpoints_ = std::move(endpoints);
  cm_index_.store(0);
}

bool AStoreClient::Retriable(const Status& s) const {
  // Transient by construction: node down, route out of date, deadline
  // expiry, fabric hiccup, slot churn. Everything else — LeaseExpired,
  // NoSpace, NotFound, Corruption, InvalidArgument — is a fact a retry
  // cannot change. DataLoss is deliberately NOT here: it is only retriable
  // via a *different* replica, and ReadInternal already fails over across
  // every live replica within one attempt — by the time DataLoss reaches
  // this predicate, every copy was tried and re-reading the same replicas
  // would just serve the same rot.
  return s.IsUnavailable() || s.IsStale() || s.IsTimedOut() || s.IsIOError() ||
         s.IsBusy();
}

Duration AStoreClient::BackoffDelay(int attempt) {
  const RetryPolicy& rp = options_.retry;
  Duration base = rp.initial_backoff;
  for (int i = 1; i < attempt && base < rp.max_backoff; ++i) base *= 2;
  if (base > rp.max_backoff) base = rp.max_backoff;
  vedb::MutexLock lk(&retry_mu_);
  // Jitter in [base/2, base]: decorrelates clients without ever collapsing
  // the delay to zero.
  return base / 2 + static_cast<Duration>(retry_rng_.Uniform(
                        static_cast<uint64_t>(base / 2 + 1)));
}

void AStoreClient::CountRetry(const char* op, const Status& cause) {
  obs::MetricsRegistry::Default()
      .GetCounter("astore.client.retries",
                  {{"op", op}, {"cause", CauseLabel(cause)}})
      ->Add(1);
}

Status AStoreClient::CmCallOnce(const std::string& service, Slice request,
                                std::string* response, Duration rpc_deadline) {
  Status s = env_->faults()->MaybeFail("astore.client.cm");
  const size_t idx = cm_index_.load(std::memory_order_relaxed);
  sim::SimNode* cm = cm_endpoints_[idx % cm_endpoints_.size()];
  if (s.ok()) {
    net::RpcCallOptions opts;
    if (rpc_deadline != 0) {
      opts.deadline = env_->clock()->Now() + rpc_deadline;
    }
    response->clear();
    s = rpc_->Call(client_node_, cm, service, request, response, opts);
  }
  if (s.ok()) {
    // Every successful control response is prefixed with the answering
    // primary's term. A term below the highest one we have seen means a
    // stale primary (e.g. revived after demotion, still believing in its
    // old reign): reject its answer and redirect to the real primary.
    if (response->size() < 8) {
      return Status::Corruption("cm response missing term");
    }
    const uint64_t term = DecodeFixed64(response->data());
    uint64_t seen = cm_term_.load(std::memory_order_relaxed);
    while (term > seen &&
           !cm_term_.compare_exchange_weak(seen, term,
                                           std::memory_order_relaxed)) {
    }
    if (term < seen) {
      s = Status::Stale("cm answered from a superseded term");
    } else {
      response->erase(0, 8);
      return Status::OK();
    }
  }
  if (cm_endpoints_.size() > 1 &&
      (s.IsUnavailable() || s.IsTimedOut() || s.IsStale())) {
    // This endpoint is dead, partitioned, demoted, or stale: prefer the
    // next one. CAS so a burst of concurrent failures rotates once.
    size_t expect = idx;
    if (cm_index_.compare_exchange_strong(expect, idx + 1,
                                          std::memory_order_relaxed)) {
      cm_failovers_->Add(1);
    }
  }
  return s;
}

Status AStoreClient::CmCall(const char* op, const std::string& service,
                            Slice request, std::string* response,
                            bool idempotent) {
  const RetryPolicy& rp = options_.retry;
  const Timestamp deadline = (rp.enabled && rp.op_deadline != 0)
                                 ? env_->clock()->Now() + rp.op_deadline
                                 : 0;
  Status s;
  for (int attempt = 1;; ++attempt) {
    s = CmCallOnce(service, request, response,
                   (idempotent && rp.cm_deadline != 0) ? rp.cm_deadline : 0);
    if (s.ok() || !rp.enabled || !Retriable(s)) return s;
    if (attempt >= rp.max_attempts) return s;
    const Timestamp now = env_->clock()->Now();
    if (deadline != 0 && now >= deadline) return s;
    CountRetry(op, s);
    Timestamp wake = now + BackoffDelay(attempt);
    if (deadline != 0 && wake > deadline) wake = deadline;
    env_->clock()->SleepUntil(wake);
  }
}

Status AStoreClient::Connect() { return RenewLease(); }

Status AStoreClient::RenewLease() {
  std::string req, resp;
  PutFixed64(&req, client_id_);
  // Renewal rides the full retry policy: during a CM failover the renew
  // loop is what keeps probing endpoints until the new primary answers,
  // and a lost renewal here is the difference between a transparent
  // failover and a LeaseExpired surfacing to every writer.
  Status s = CmCall("renew_lease", "cm.lease", Slice(req), &resp,
                    /*idempotent=*/true);
  if (!s.ok()) {
    obs::MetricsRegistry::Default()
        .GetCounter("astore.client.lease_renew_failures",
                    {{"cause", CauseLabel(s)}})
        ->Add(1);
    return s;
  }
  if (resp.size() < 8) return Status::Corruption("bad lease response");
  lease_expiry_.store(DecodeFixed64(resp.data()));
  return Status::OK();
}

Result<SegmentHandlePtr> AStoreClient::CreateSegment(uint64_t size,
                                                     int replication) {
  if (replication <= 0) replication = options_.default_replication;
  std::string req, resp;
  PutFixed64(&req, client_id_);
  PutFixed64(&req, size);
  PutFixed32(&req, static_cast<uint32_t>(replication));
  VEDB_RETURN_IF_ERROR(CmCall("create", "cm.create_segment", Slice(req),
                              &resp, /*idempotent=*/false));
  Slice in(resp);
  SegmentRoute route;
  if (!DecodeSegmentRoute(&in, &route)) {
    return Status::Corruption("bad create response");
  }
  auto handle = std::make_shared<SegmentHandle>(std::move(route));
  vedb::MutexLock lk(&mu_);
  open_[handle->id()] = handle;
  return handle;
}

Result<SegmentHandlePtr> AStoreClient::OpenSegment(SegmentId id) {
  std::string req, resp;
  PutFixed64(&req, id);
  VEDB_RETURN_IF_ERROR(
      CmCall("open", "cm.get_route", Slice(req), &resp, /*idempotent=*/true));
  Slice in(resp);
  SegmentRoute route;
  if (!DecodeSegmentRoute(&in, &route)) {
    return Status::Corruption("bad route response");
  }
  auto handle = std::make_shared<SegmentHandle>(std::move(route));
  vedb::MutexLock lk(&mu_);
  open_[handle->id()] = handle;
  return handle;
}

Status AStoreClient::Append(const SegmentHandlePtr& handle, Slice data,
                            uint64_t* offset_out) {
  // QoS admission happens strictly before any handle lock (see the
  // qos.* -> astore.handle order contracts): both limiter waits park
  // through the virtual clock.
  qos::Ticket ticket;
  if (options_.admission != nullptr) {
    VEDB_ASSIGN_OR_RETURN(
        ticket, options_.admission->Admit(options_.tenant, data.size()));
  }
  uint64_t offset;
  {
    // Reserve the cursor under a short lock; the RDMA fan-out happens
    // outside it so concurrent appends overlap in virtual time.
    vedb::MutexLock lk(&handle->mu_);
    if (handle->stale_) return Status::Stale("segment route is stale");
    if (handle->frozen_) return Status::Unavailable("segment frozen");
    // A record bigger than the whole segment is a caller bug, not a
    // capacity condition: NoSpace tells callers "open a fresh segment and
    // retry", which would loop forever on an impossible payload.
    if (data.size() > handle->route_.size) {
      return Status::InvalidArgument("record larger than the segment");
    }
    // Subtraction form: `write_offset_ + data.size()` wraps for sizes near
    // UINT64_MAX and would bypass the capacity check.
    if (handle->write_offset_ > handle->route_.size - data.size()) {
      return Status::NoSpace("segment full");
    }
    offset = handle->write_offset_;
    handle->write_offset_ += data.size();
  }
  Status s = WriteWithRecovery(handle, offset, data, "append");
  if (s.ok() && offset_out != nullptr) *offset_out = offset;
  return s;
}

Result<AStoreClient::AppendToken> AStoreClient::AppendAsync(
    const SegmentHandlePtr& handle, Slice data, uint64_t* offset_out) {
  // Admission first (as in Append); the ticket then rides inside the ring
  // entry so the tenant's in-flight accounting spans the async lifetime.
  qos::Ticket ticket;
  if (options_.admission != nullptr) {
    VEDB_ASSIGN_OR_RETURN(
        ticket, options_.admission->Admit(options_.tenant, data.size()));
  }
  uint64_t offset;
  {
    vedb::MutexLock lk(&handle->mu_);
    if (handle->stale_) return Status::Stale("segment route is stale");
    if (handle->frozen_) return Status::Unavailable("segment frozen");
    if (data.size() > handle->route_.size) {
      return Status::InvalidArgument("record larger than the segment");
    }
    if (handle->write_offset_ > handle->route_.size - data.size()) {
      return Status::NoSpace("segment full");
    }
    offset = handle->write_offset_;
    handle->write_offset_ += data.size();
  }
  if (offset_out != nullptr) *offset_out = offset;
  std::vector<RecordPiece> pieces(1);
  pieces[0].offset = offset;
  pieces[0].data = data;
  return append_ring_->Submit(handle, std::move(pieces), std::move(ticket));
}

Status AStoreClient::WaitAppend(AppendToken token) {
  return append_ring_->Wait(token);
}

Status AStoreClient::WriteRecordGroup(
    const SegmentHandlePtr& handle,
    const std::vector<const std::vector<RecordPiece>*>& records) {
  {
    vedb::MutexLock lk(&handle->mu_);
    if (handle->stale_) return Status::Stale("segment route is stale");
    if (handle->frozen_) return Status::Unavailable("segment frozen");
  }
  Status s = PostRecordGroup(handle, records);
  const RetryPolicy& rp = options_.retry;
  if (s.ok() || !rp.enabled) return s;
  // Same recovery protocol as WriteWithRecovery: the failed group's poster
  // owns repair — refresh the route, re-post the identical bytes at the
  // identical offsets (bypassing the frozen gate), un-freeze on success.
  const Timestamp deadline =
      rp.op_deadline == 0 ? 0 : env_->clock()->Now() + rp.op_deadline;
  for (int attempt = 1; attempt < rp.max_attempts; ++attempt) {
    if (!Retriable(s)) return s;
    if (handle->stale()) return s;
    const Timestamp now = env_->clock()->Now();
    if (deadline != 0 && now >= deadline) return s;
    CountRetry("append_group", s);
    Timestamp wake = now + BackoffDelay(attempt);
    if (deadline != 0 && wake > deadline) wake = deadline;
    env_->clock()->SleepUntil(wake);
    // discard-ok: an unreachable CM keeps the cached route; retry proceeds.
    (void)RefreshRoute(handle);
    if (handle->stale()) return Status::Stale("segment route is stale");
    s = PostRecordGroup(handle, records);
    if (s.ok()) {
      vedb::MutexLock lk(&handle->mu_);
      if (handle->frozen_ && !handle->stale_) {
        handle->frozen_ = false;
        unfreezes_->Add(1);
      }
    }
  }
  return s;
}

Status AStoreClient::PostRecordGroup(
    const SegmentHandlePtr& handle,
    const std::vector<const std::vector<RecordPiece>*>& records) {
  if (options_.enforce_lease && !LeaseValid()) {
    return Status::LeaseExpired("client lease expired");
  }
  Status injected = env_->faults()->MaybeFail("astore.client.write");
  if (!injected.ok()) {
    vedb::MutexLock lk(&handle->mu_);
    handle->frozen_ = true;
    handle->frozen_epoch_ = handle->route_.epoch;
    return injected;
  }

  const Timestamp t0 = env_->clock()->Now();
  obs::SpanScope span(obs::Tracer::Global(), "astore.client.write");
  span.AddTag("segment", std::to_string(handle->id()));
  span.AddTag("batch", std::to_string(records.size()));

  // Batched SDK cost: per-record WR assembly plus ONE doorbell/CQ reap for
  // the whole group — this replaces N copies of write_sdk_overhead, which
  // is where the Table-2 client_ns share collapses.
  client_node_->cpu()->Access(
      0, options_.append_ring.submit_overhead *
                 static_cast<Duration>(records.size()) +
             options_.append_ring.completion_overhead);
  const Timestamp sdk_done = env_->clock()->Now();

  SegmentRoute route = handle->route();

  // One io-meta covering the group's full extent: after a failure the
  // effective length discovery only needs the furthest persisted byte.
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  uint64_t bytes = 0;
  for (const auto* rec : records) {
    for (const RecordPiece& p : *rec) {
      lo = std::min(lo, p.offset);
      hi = std::max(hi, p.offset + p.data.size());
      bytes += p.data.size();
    }
  }
  std::string io_meta;
  PutFixed64(&io_meta, lo);
  PutFixed64(&io_meta, hi - lo);

  // One chain per replica: every record's WRs in submission order, then
  // WRITE io-meta, then one flush READ covering them all. WR order inside
  // the chain is the crash-ordering contract: a torn chain applies a
  // prefix, so a record is only ever torn *after* all earlier records.
  std::vector<std::vector<net::RdmaWorkRequest>> chains;
  chains.reserve(route.replicas.size());
  for (const auto& loc : route.replicas) {
    net::ChainBuilder builder(loc.region);
    for (const auto* rec : records) {
      for (const RecordPiece& p : *rec) {
        builder.Write(loc.base_offset + p.offset, p.data);
      }
    }
    builder.Write(loc.io_meta_offset, Slice(io_meta));
    builder.FlushRead(loc.io_meta_offset);
    chains.push_back(builder.Take());
  }

  std::vector<net::ChainBreakdown> breakdowns;
  auto statuses = fabric_->PostChainMulti(client_node_, chains, &breakdowns);
  for (const Status& st : statuses) {
    if (!st.ok()) {
      vedb::MutexLock lk(&handle->mu_);
      handle->frozen_ = true;
      handle->frozen_epoch_ = handle->route_.epoch;
      return st;
    }
  }

  writes_->Add(records.size());
  write_bytes_->Add(bytes);
  write_ns_->Observe(env_->clock()->Now() - t0);
  ring_doorbells_->Add(1);
  doorbell_batch_->Observe(records.size());
  if (records.size() > 1) coalesced_appends_->Add(records.size());

  // Table 2-style breakdown of the critical chain, tiling [t0, end] (see
  // WriteInternal). With batching the client part is amortized: one
  // doorbell + the batched SDK cost covers every record in the group.
  if (obs::Tracer* tracer = obs::Tracer::Global();
      tracer != nullptr && span.active() && !breakdowns.empty()) {
    const net::ChainBreakdown* crit = &breakdowns[0];
    for (const auto& bd : breakdowns) {
      if (bd.end > crit->end) crit = &bd;
    }
    const Timestamp c1 = sdk_done + crit->client;
    const Timestamp c2 = c1 + crit->network;
    const Timestamp c3 = c2 + crit->server;
    tracer->AddSpan("breakdown.client", span.context(), t0, c1);
    tracer->AddSpan("breakdown.network", span.context(), c1, c2);
    tracer->AddSpan("breakdown.server", span.context(), c2, c3);
    tracer->AddSpan("breakdown.pmem_flush", span.context(), c3, crit->end);
  }

  // Ack ordering: every record's bytes and the io-meta must be in the
  // persistence domain on every replica before any token resolves OK —
  // this is what keeps doorbell coalescing safe under the PersistChecker.
  for (const auto& loc : route.replicas) {
    for (const auto* rec : records) {
      for (const RecordPiece& p : *rec) {
        VEDB_RETURN_IF_ERROR(fabric_->VerifyPersisted(
            loc.region, loc.base_offset + p.offset, p.data.size(),
            "astore.client.ack/payload"));
      }
    }
    VEDB_RETURN_IF_ERROR(fabric_->VerifyPersisted(
        loc.region, loc.io_meta_offset, io_meta.size(),
        "astore.client.ack/io_meta"));
  }
  return Status::OK();
}

Status AStoreClient::WriteAt(const SegmentHandlePtr& handle, uint64_t offset,
                             Slice data) {
  qos::Ticket ticket;
  if (options_.admission != nullptr) {
    VEDB_ASSIGN_OR_RETURN(
        ticket, options_.admission->Admit(options_.tenant, data.size()));
  }
  {
    vedb::MutexLock lk(&handle->mu_);
    if (handle->stale_) return Status::Stale("segment route is stale");
    if (handle->frozen_) return Status::Unavailable("segment frozen");
    if (data.size() > handle->route_.size ||
        offset > handle->route_.size - data.size()) {
      return Status::InvalidArgument("write past segment end");
    }
  }
  return WriteWithRecovery(handle, offset, data, "write_at");
}

Status AStoreClient::WriteWithRecovery(const SegmentHandlePtr& handle,
                                       uint64_t offset, Slice data,
                                       const char* op) {
  Status s = WriteInternal(handle, offset, data);
  const RetryPolicy& rp = options_.retry;
  if (s.ok() || !rp.enabled) return s;
  const Timestamp deadline =
      rp.op_deadline == 0 ? 0 : env_->clock()->Now() + rp.op_deadline;
  for (int attempt = 1; attempt < rp.max_attempts; ++attempt) {
    if (!Retriable(s)) return s;
    if (handle->stale()) return s;  // reclaimed/deleted: permanently gone
    const Timestamp now = env_->clock()->Now();
    if (deadline != 0 && now >= deadline) return s;
    CountRetry(op, s);
    Timestamp wake = now + BackoffDelay(attempt);
    if (deadline != 0 && wake > deadline) wake = deadline;
    env_->clock()->SleepUntil(wake);
    // Pick up the CM's rebuilt replica set before re-posting. discard-ok:
    // an unreachable CM keeps the cached route and the retry proceeds.
    (void)RefreshRoute(handle);
    if (handle->stale()) return Status::Stale("segment route is stale");
    // The failed writer owns repair of its reserved range: it bypasses the
    // frozen gate and re-posts the same bytes at the same offset on every
    // replica, so a success re-establishes replica agreement — which is
    // why it may also lift the freeze it caused.
    s = WriteInternal(handle, offset, data);
    if (s.ok()) {
      vedb::MutexLock lk(&handle->mu_);
      if (handle->frozen_ && !handle->stale_) {
        handle->frozen_ = false;
        unfreezes_->Add(1);
      }
    }
  }
  return s;
}

Status AStoreClient::WriteInternal(const SegmentHandlePtr& handle,
                                   uint64_t offset, Slice data) {
  // Zombie fencing: a client whose lease lapsed must not touch PMem that
  // may have been reclaimed for another client (Section IV-C).
  if (options_.enforce_lease && !LeaseValid()) {
    return Status::LeaseExpired("client lease expired");
  }

  // Injection point for the whole fan-out (costs nothing unarmed). An
  // injected failure behaves exactly like a replica failure: freeze, then
  // let the recovery loop repair.
  Status injected = env_->faults()->MaybeFail("astore.client.write");
  if (!injected.ok()) {
    vedb::MutexLock lk(&handle->mu_);
    handle->frozen_ = true;
    handle->frozen_epoch_ = handle->route_.epoch;
    return injected;
  }

  const Timestamp t0 = env_->clock()->Now();
  obs::SpanScope span(obs::Tracer::Global(), "astore.client.write");
  span.AddTag("segment", std::to_string(handle->id()));

  // SDK software cost (WR construction, segment-meta update, CQ polling).
  client_node_->cpu()->Access(0, options_.write_sdk_overhead);
  const Timestamp sdk_done = env_->clock()->Now();

  SegmentRoute route = handle->route();

  // io-meta: the offset/length pair that makes the effective data length
  // discoverable after a failure (Section IV-B).
  std::string io_meta;
  PutFixed64(&io_meta, offset);
  PutFixed64(&io_meta, data.size());

  // One chain per replica: WRITE payload + WRITE io-meta + flush READ,
  // "chained together to reduce MMIO operations".
  std::vector<std::vector<net::RdmaWorkRequest>> chains;
  chains.reserve(route.replicas.size());
  for (const auto& loc : route.replicas) {
    std::vector<net::RdmaWorkRequest> chain(3);
    chain[0].kind = net::RdmaWorkRequest::Kind::kWrite;
    chain[0].region = loc.region;
    chain[0].offset = loc.base_offset + offset;
    chain[0].write_data = data;
    chain[1].kind = net::RdmaWorkRequest::Kind::kWrite;
    chain[1].region = loc.region;
    chain[1].offset = loc.io_meta_offset;
    chain[1].write_data = Slice(io_meta);
    chain[2].kind = net::RdmaWorkRequest::Kind::kRead;
    chain[2].region = loc.region;
    chain[2].offset = loc.io_meta_offset;
    chain[2].read_len = 0;  // flush-only READ
    chains.push_back(std::move(chain));
  }

  std::vector<net::ChainBreakdown> breakdowns;
  auto statuses = fabric_->PostChainMulti(client_node_, chains, &breakdowns);
  for (const Status& s : statuses) {
    if (!s.ok()) {
      // "If any copy fails, it returns a failure to the application and
      // freezes the segment with the current effective length."
      vedb::MutexLock lk(&handle->mu_);
      handle->frozen_ = true;
      handle->frozen_epoch_ = handle->route_.epoch;
      return s;
    }
  }

  writes_->Add(1);
  write_bytes_->Add(data.size());
  write_ns_->Observe(env_->clock()->Now() - t0);

  // Table 2-style breakdown of the critical (slowest-replica) chain: four
  // child spans that tile [t0, chain end] with no gaps, so their durations
  // sum exactly to the end-to-end write span. The client component is the
  // SDK software time plus the doorbell; the rest comes straight from the
  // fabric's ChainBreakdown.
  if (obs::Tracer* tracer = obs::Tracer::Global();
      tracer != nullptr && span.active() && !breakdowns.empty()) {
    const net::ChainBreakdown* crit = &breakdowns[0];
    for (const auto& bd : breakdowns) {
      if (bd.end > crit->end) crit = &bd;
    }
    const Timestamp c1 = sdk_done + crit->client;
    const Timestamp c2 = c1 + crit->network;
    const Timestamp c3 = c2 + crit->server;
    tracer->AddSpan("breakdown.client", span.context(), t0, c1);
    tracer->AddSpan("breakdown.network", span.context(), c1, c2);
    tracer->AddSpan("breakdown.server", span.context(), c2, c3);
    tracer->AddSpan("breakdown.pmem_flush", span.context(), c3, crit->end);
  }

  // All replicas reported completion: this is the point where the write is
  // acknowledged as durable to the caller. The persist checker validates
  // that the payload and io-meta actually entered every replica's
  // persistence domain — with DDIO left enabled the flush READ is a no-op
  // and this trips immediately, which is exactly the bug class the paper's
  // DDIO-off deployment exists to prevent.
  for (const auto& loc : route.replicas) {
    VEDB_RETURN_IF_ERROR(fabric_->VerifyPersisted(
        loc.region, loc.base_offset + offset, data.size(),
        "astore.client.ack/payload"));
    VEDB_RETURN_IF_ERROR(fabric_->VerifyPersisted(
        loc.region, loc.io_meta_offset, io_meta.size(),
        "astore.client.ack/io_meta"));
  }
  return Status::OK();
}

Status AStoreClient::VerifyPersisted(const SegmentHandlePtr& handle,
                                     uint64_t offset, uint64_t len,
                                     std::string_view context) {
  SegmentRoute route = handle->route();
  for (const auto& loc : route.replicas) {
    VEDB_RETURN_IF_ERROR(fabric_->VerifyPersisted(
        loc.region, loc.base_offset + offset, len, context));
  }
  return Status::OK();
}

Status AStoreClient::Read(const SegmentHandlePtr& handle, uint64_t offset,
                          uint64_t len, char* out) {
  return ReadWithRecovery(handle, offset, len, out, ReadOptions{});
}

Status AStoreClient::ReadVerified(const SegmentHandlePtr& handle,
                                  uint64_t offset, uint64_t len, char* out,
                                  const ReadOptions& read_opts) {
  return ReadWithRecovery(handle, offset, len, out, read_opts);
}

Status AStoreClient::ReadWithRecovery(const SegmentHandlePtr& handle,
                                      uint64_t offset, uint64_t len, char* out,
                                      const ReadOptions& read_opts) {
  qos::Ticket ticket;
  if (options_.admission != nullptr) {
    VEDB_ASSIGN_OR_RETURN(
        ticket, options_.admission->Admit(options_.tenant, len));
  }
  {
    vedb::MutexLock lk(&handle->mu_);
    if (handle->stale_) return Status::Stale("segment route is stale");
    if (len > handle->route_.size || offset > handle->route_.size - len) {
      return Status::InvalidArgument("read past segment end");
    }
  }
  Status s = ReadInternal(handle, offset, len, out, read_opts);
  const RetryPolicy& rp = options_.retry;
  if (s.ok() || !rp.enabled) return s;
  const Timestamp deadline =
      rp.op_deadline == 0 ? 0 : env_->clock()->Now() + rp.op_deadline;
  for (int attempt = 1; attempt < rp.max_attempts; ++attempt) {
    if (!Retriable(s)) return s;
    if (handle->stale()) return s;
    const Timestamp now = env_->clock()->Now();
    if (deadline != 0 && now >= deadline) return s;
    CountRetry("read", s);
    Timestamp wake = now + BackoffDelay(attempt);
    if (deadline != 0 && wake > deadline) wake = deadline;
    env_->clock()->SleepUntil(wake);
    // discard-ok: an unreachable CM keeps the cached route.
    (void)RefreshRoute(handle);
    if (handle->stale()) return Status::Stale("segment route is stale");
    s = ReadInternal(handle, offset, len, out, read_opts);
  }
  return s;
}

Status AStoreClient::ReadInternal(const SegmentHandlePtr& handle,
                                  uint64_t offset, uint64_t len, char* out,
                                  const ReadOptions& read_opts) {
  VEDB_RETURN_IF_ERROR(env_->faults()->MaybeFail("astore.client.read"));
  const Timestamp t0 = env_->clock()->Now();
  obs::SpanScope span(obs::Tracer::Global(), "astore.client.read");
  span.AddTag("segment", std::to_string(handle->id()));
  client_node_->cpu()->Access(0, options_.read_sdk_overhead);
  SegmentRoute route = handle->route();
  if (route.replicas.empty()) return Status::Unavailable("no replicas");

  // "Selects an online copy to read through one-sided RDMA READ." A failed
  // copy does not fail the read: we fail over to the next replica and only
  // surface the last error once every copy has been tried. A copy that
  // *answers* but fails integrity (short completion or verifier mismatch)
  // is treated the same way, except it is remembered for read-repair and
  // the surfaced status is DataLoss, never a transport error.
  const uint64_t start = read_rr_.fetch_add(1);
  Status last = Status::Unavailable("no live replica for segment");
  std::vector<size_t> bad;  // replica indices that served corrupt bytes
  for (size_t i = 0; i < route.replicas.size(); ++i) {
    const size_t idx = (start + i) % route.replicas.size();
    const auto& loc = route.replicas[idx];
    sim::SimNode* node = env_->GetNode(loc.node);
    if (!node->alive()) continue;
    Status s = env_->faults()->MaybeFail("astore.client.read.replica");
    if (s.ok()) {
      // Simulated DMA completion length. The "astore.client.read.short"
      // site models a replica NIC aborting mid-transfer: only part of the
      // requested range lands in the buffer and the completion reports the
      // smaller length.
      uint64_t completed = len;
      Status torn = env_->faults()->MaybeFail("astore.client.read.short");
      if (!torn.ok() && len > 0) completed = len / 2;
      s = fabric_->Read(client_node_, loc.region, loc.base_offset + offset,
                        completed, out);
      if (s.ok()) {
        // Completion length first, checksum second: handing a sliced
        // buffer to the verifier could let a checksum covering a shorter
        // prefix record pass as the whole range.
        if (completed != len) {
          s = Status::DataLoss("replica completed a short read");
        } else if (read_opts.verify) {
          Status v = read_opts.verify(Slice(out, len));
          if (!v.ok()) {
            s = Status::DataLoss(v.message().empty() ? "checksum mismatch"
                                                     : v.message());
          }
        }
        if (s.IsDataLoss()) {
          corrupt_reads_->Add(1);
          bad.push_back(idx);
        }
      }
    }
    if (s.ok()) {
      if (!bad.empty() && read_opts.read_repair) {
        RepairReplicas(handle, route, bad, offset, Slice(out, len));
      }
      reads_->Add(1);
      read_ns_->Observe(env_->clock()->Now() - t0);
      return s;
    }
    last = std::move(s);
  }
  return last;
}

void AStoreClient::RepairReplicas(const SegmentHandlePtr& handle,
                                  const SegmentRoute& route,
                                  const std::vector<size_t>& bad,
                                  uint64_t offset, Slice good) {
  for (size_t idx : bad) {
    Status s = WriteReplica(handle, idx, offset, good, route.epoch);
    if (s.ok()) read_repairs_->Add(1);
    // A failed repair is left for the next read or the scrubber.
  }
}

Status AStoreClient::WriteReplica(const SegmentHandlePtr& handle,
                                  size_t replica_idx, uint64_t offset,
                                  Slice data, uint64_t route_epoch) {
  SegmentRoute route = handle->route();
  // Epoch guard: if the CM moved the route since the caller captured it,
  // `replica_idx` may now point at a freshly rebuilt copy, and a concurrent
  // writer may have re-posted newer bytes — either way the other party
  // wins and the repair is dropped (the scrubber will catch real rot).
  if (route.epoch != route_epoch) {
    return Status::Stale("route epoch moved; repair dropped");
  }
  if (replica_idx >= route.replicas.size()) {
    return Status::InvalidArgument("no such replica");
  }
  if (data.size() > route.size || offset > route.size - data.size()) {
    return Status::InvalidArgument("write past segment end");
  }
  const auto& loc = route.replicas[replica_idx];
  sim::SimNode* node = env_->GetNode(loc.node);
  if (!node->alive()) return Status::Unavailable("replica node is down");
  // WRITE the verified bytes + flush READ: the same persistence protocol
  // as the write path, against the one bad replica.
  std::vector<net::RdmaWorkRequest> chain(2);
  chain[0].kind = net::RdmaWorkRequest::Kind::kWrite;
  chain[0].region = loc.region;
  chain[0].offset = loc.base_offset + offset;
  chain[0].write_data = data;
  chain[1].kind = net::RdmaWorkRequest::Kind::kRead;
  chain[1].region = loc.region;
  chain[1].offset = loc.base_offset + offset;
  chain[1].read_len = 0;  // flush-only READ
  return fabric_->PostChain(client_node_, chain);
}

Status AStoreClient::ReadReplica(const SegmentHandlePtr& handle,
                                 size_t replica_idx, uint64_t offset,
                                 uint64_t len, char* out) {
  SegmentRoute route = handle->route();
  if (replica_idx >= route.replicas.size()) {
    return Status::InvalidArgument("no such replica");
  }
  if (len > route.size || offset > route.size - len) {
    return Status::InvalidArgument("read past segment end");
  }
  const auto& loc = route.replicas[replica_idx];
  sim::SimNode* node = env_->GetNode(loc.node);
  if (!node->alive()) return Status::Unavailable("replica node is down");
  return fabric_->Read(client_node_, loc.region, loc.base_offset + offset,
                       len, out);
}

Status AStoreClient::ReportCorruptReplica(const SegmentHandlePtr& handle,
                                          const std::string& node_name) {
  std::string req, resp;
  PutLengthPrefixedSlice(&req, Slice(node_name));
  PutFixed64(&req, handle->id());
  // Idempotent: quarantining an already-dropped replica is a no-op on the
  // CM, so per-attempt deadlines and retries are safe.
  return CmCall("report_corrupt", "cm.report_corrupt", Slice(req), &resp,
                /*idempotent=*/true);
}

Status AStoreClient::Delete(const SegmentHandlePtr& handle) {
  std::string req, resp;
  PutFixed64(&req, client_id_);
  PutFixed64(&req, handle->id());
  // Non-idempotent (a retried delete that already applied answers NotFound,
  // which is harmless, but per-attempt deadlines could time out a delete
  // that actually succeeded): no cm_deadline, retries only on transport
  // failure.
  Status s = CmCall("delete", "cm.delete_segment", Slice(req), &resp,
                    /*idempotent=*/false);
  {
    vedb::MutexLock lk(&handle->mu_);
    handle->stale_ = true;
    handle->frozen_ = true;
  }
  {
    vedb::MutexLock lk(&mu_);
    open_.erase(handle->id());
  }
  return s;
}

void AStoreClient::RefreshRoutes() {
  std::vector<SegmentHandlePtr> handles;
  {
    vedb::MutexLock lk(&mu_);
    for (auto it = open_.begin(); it != open_.end();) {
      if (SegmentHandlePtr h = it->second.lock()) {
        handles.push_back(std::move(h));
        ++it;
      } else {
        it = open_.erase(it);
      }
    }
  }
  for (const SegmentHandlePtr& handle : handles) {
    // discard-ok: per-handle refresh failures (CM unreachable) keep the
    // cached route; the next refresh pass tries again.
    (void)RefreshRoute(handle);
  }
}

Status AStoreClient::RefreshRoute(const SegmentHandlePtr& handle) {
  std::string req, resp;
  PutFixed64(&req, handle->id());
  // Single attempt (the periodic pass and the write-retry loop supply the
  // repetition); the endpoint rotation inside still walks the CM list.
  Status s = CmCallOnce("cm.get_route", Slice(req), &resp,
                        options_.retry.cm_deadline);
  route_refreshes_->Add(1);
  vedb::MutexLock lk(&handle->mu_);
  if (s.IsNotFound()) {
    // Deleted (possibly reclaimed): stop using it before the server's
    // cleaning deadline can hand the space to someone else.
    handle->stale_ = true;
    handle->frozen_ = true;
    return s;
  }
  if (!s.ok()) return s;  // CM unreachable: keep the cached route
  Slice in(resp);
  SegmentRoute route;
  if (!DecodeSegmentRoute(&in, &route)) {
    return Status::Corruption("bad route response");
  }
  if (route.owner != client_id_) {
    handle->stale_ = true;
    handle->frozen_ = true;
    return Status::Stale("segment reclaimed by another owner");
  }
  if (route.epoch != handle->route_.epoch) {
    const bool advanced = route.epoch > handle->route_.epoch;
    handle->route_ = std::move(route);
    // The CM rebuilt the replica set past the failure that froze this
    // handle, so the freeze no longer protects anything: un-freeze (the
    // recovery half of Section IV-C's stale-route protocol).
    if (advanced && handle->frozen_ && !handle->stale_ &&
        handle->route_.epoch > handle->frozen_epoch_) {
      handle->frozen_ = false;
      unfreezes_->Add(1);
    }
  }
  return Status::OK();
}

void AStoreClient::BackgroundLoop() {
  Timestamp last_lease = 0;
  while (!shutdown_.load()) {
    env_->clock()->SleepFor(options_.route_refresh_interval);
    RefreshRoutes();
    Timestamp now = env_->clock()->Now();
    if (now - last_lease >= options_.lease_renew_interval) {
      // discard-ok: a failed renewal is retried next period; writes fence
      // themselves on LeaseValid().
      (void)RenewLease();
      last_lease = now;
    }
  }
}

void AStoreClient::StartBackground(sim::ActorGroup* group) {
  group->Spawn([this] { BackgroundLoop(); });
}

}  // namespace vedb::astore
