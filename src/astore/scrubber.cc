#include "astore/scrubber.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.h"
#include "obs/trace.h"
#include "sim/lock_order.h"

namespace vedb::astore {

Scrubber::Scrubber(sim::SimEnvironment* env, AStoreClient* client,
                   AStoreServer* server, const Options& options)
    : env_(env),
      client_(client),
      server_(server),
      options_(options),
      bucket_(env->clock(),
              qos::TokenBucket::Options{options.rate_bytes_per_sec,
                                        options.burst_bytes}) {
  sim::LockOrderGraph::RegisterContract("astore.scrub", "astore.server");
  sim::LockOrderGraph::RegisterContract("astore.scrub", "cm.state");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::string node = server_->node()->name();
  chunks_ = reg.GetCounter("astore.scrub.chunks", {{"node", node}});
  bytes_ = reg.GetCounter("astore.scrub.bytes", {{"node", node}});
  mismatches_ = reg.GetCounter("astore.scrub.mismatches", {{"node", node}});
  repairs_ = reg.GetCounter("astore.scrub.repairs", {{"node", node}});
  reports_ = reg.GetCounter("astore.scrub.reports", {{"node", node}});
  skipped_ = reg.GetCounter("astore.scrub.skipped", {{"node", node}});
}

void Scrubber::StartBackground(sim::ActorGroup* group) {
  {
    std::lock_guard<std::mutex> lk(bg_mu_);
    bg_active_++;
  }
  group->Spawn([this] { ScrubLoop(); });
}

void Scrubber::Shutdown() {
  RequestShutdown();
  sim::VirtualClock::ExternalWaitScope ext(env_->clock());
  std::unique_lock<std::mutex> lk(bg_mu_);
  bg_cv_.wait(lk, [this] { return bg_active_ == 0; });
}

void Scrubber::ScrubLoop() {
  while (!shutdown_.load()) {
    env_->clock()->SleepFor(options_.scrub_period);
    if (shutdown_.load()) break;
    ScrubPass();
  }
  {
    std::lock_guard<std::mutex> lk(bg_mu_);
    bg_active_--;
  }
  bg_cv_.notify_all();
}

void Scrubber::ScrubPass() {
  // A crashed node's scrubber is gone with its process.
  if (!server_->node()->alive()) return;
  obs::SpanScope span(obs::Tracer::Global(), "astore.scrub.pass");
  const std::vector<SegmentId> ids = server_->LiveSegmentIds();
  for (SegmentId id : ids) {
    if (shutdown_.load()) return;
    // discard-ok: a segment that vanished or got quarantined mid-pass is
    // simply picked up (or not) by the next pass.
    (void)ScrubSegment(id);
  }
  vedb::MutexLock lk(&mu_);
  pass_count_++;
}

bool Scrubber::ScrubSegment(SegmentId id) {
  auto opened = client_->OpenSegment(id);
  if (!opened.ok()) return true;  // deleted or CM unreachable; next pass
  SegmentHandlePtr handle = opened.value();
  const SegmentRoute route = handle->route();
  const std::string& self = server_->node()->name();
  size_t local_idx = route.replicas.size();
  for (size_t i = 0; i < route.replicas.size(); ++i) {
    if (route.replicas[i].node == self) local_idx = i;
  }
  // Not routed here (a stale local copy awaiting the deferred cleaner) or
  // unreplicated (nothing to vote against): nothing to scrub.
  if (local_idx == route.replicas.size() || route.replicas.size() < 2) {
    return true;
  }

  obs::SpanScope span(obs::Tracer::Global(), "astore.scrub.segment");
  span.AddTag("segment", std::to_string(id));
  for (uint64_t off = 0; off < route.size; off += options_.chunk_bytes) {
    if (shutdown_.load()) return true;
    const uint64_t len = std::min(options_.chunk_bytes, route.size - off);
    // Pace BEFORE reading: every byte the vote will pull (two settledness
    // reads per replica) is paid for at the configured background rate.
    const Timestamp ready =
        bucket_.Acquire(2 * len * route.replicas.size());
    env_->clock()->SleepUntil(ready);
    const ChunkVerdict verdict = ScrubChunk(handle, route, local_idx, off, len);
    if (verdict == ChunkVerdict::kIrreparable) {
      // In-place repair failed (a latent sticky bad region keeps corrupting
      // our copy): escalate. The CM drops this replica from the route and
      // re-replicates the segment from a healthy copy onto another server.
      Status s = client_->ReportCorruptReplica(handle, self);
      if (s.ok()) {
        reports_->Add(1);
        VEDB_LOG(kWarn,
                 "scrub %s: segment %llu replica irreparable at offset %llu, "
                 "reported for quarantine",
                 self.c_str(), static_cast<unsigned long long>(id),
                 static_cast<unsigned long long>(off));
      }
      // Reported or not, stop touching this segment: its route is moving
      // (or the report will be retried by the next pass).
      return false;
    }
  }
  return true;
}

Scrubber::ChunkVerdict Scrubber::ScrubChunk(const SegmentHandlePtr& handle,
                                            const SegmentRoute& route,
                                            size_t local_idx, uint64_t offset,
                                            uint64_t len) {
  const size_t n = route.replicas.size();
  std::vector<std::string> first(n), second(n);
  std::vector<bool> settled(n, false);
  chunks_->Add(1);
  for (size_t i = 0; i < n; ++i) {
    first[i].resize(len);
    if (client_->ReadReplica(handle, i, offset, len, first[i].data()).ok()) {
      bytes_->Add(len);
    } else {
      first[i].clear();  // replica down; excluded from the vote
    }
  }
  // Settledness: re-read after a gap. A copy that changed between the two
  // reads is being appended to right now — comparing replicas mid-write
  // would flag the write frontier as rot, so the chunk waits a round.
  env_->clock()->SleepFor(options_.settle_gap);
  for (size_t i = 0; i < n; ++i) {
    if (first[i].empty() && len > 0) continue;
    second[i].resize(len);
    if (client_->ReadReplica(handle, i, offset, len, second[i].data()).ok()) {
      bytes_->Add(len);
      settled[i] = first[i] == second[i];
    }
  }
  if (!settled[local_idx]) {
    skipped_->Add(1);
    return ChunkVerdict::kSkipped;
  }

  // Strict majority vote over the settled copies.
  std::map<std::string, int> votes;
  int usable = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!settled[i]) continue;
    votes[second[i]]++;
    usable++;
  }
  const std::string* majority = nullptr;
  int best = 0;
  bool tie = false;
  for (const auto& [content, count] : votes) {
    if (count > best) {
      majority = &content;
      best = count;
      tie = false;
    } else if (count == best) {
      tie = true;
    }
  }
  if (majority == nullptr || tie || 2 * best <= usable) {
    // No quorum on what the bytes should be (e.g. two settled copies that
    // disagree 1-1). Don't guess; the next pass — after a writer finishes
    // or another replica comes back — will have more voters.
    skipped_->Add(1);
    return ChunkVerdict::kSkipped;
  }
  if (second[local_idx] == *majority) return ChunkVerdict::kClean;

  // Our copy diverges from a stable majority: bit rot. Rewrite the good
  // bytes over it (epoch-guarded — a concurrent route change wins) and
  // verify the rewrite took.
  mismatches_->Add(1);
  Status w = client_->WriteReplica(handle, local_idx, offset, Slice(*majority),
                                   route.epoch);
  if (!w.ok()) {
    skipped_->Add(1);  // route moved under us; re-examined next pass
    return ChunkVerdict::kSkipped;
  }
  std::string reread(len, '\0');
  Status r = client_->ReadReplica(handle, local_idx, offset, len,
                                  reread.data());
  if (r.ok() && reread == *majority) {
    repairs_->Add(1);
    return ChunkVerdict::kRepaired;
  }
  return ChunkVerdict::kIrreparable;
}

}  // namespace vedb::astore
