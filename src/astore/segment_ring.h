// SegmentRing (Section V-A): the storage SDK's logical log container over
// AStore — a fixed set of append-only segments arranged in a ring. Unlike
// the BlobGroup it replaces, large writes are NOT split into small fixed
// I/Os; a record goes to PMem in one chained RDMA write.
//
// Each segment starts with a small header carrying a status and the LSN of
// the first record stored in it. On DBEngine crash, a binary search over
// the headers locates the segment with the largest start LSN, and a forward
// scan (CRC-validated) inside it finds the durable end of the log.

#ifndef VEDB_ASTORE_SEGMENT_RING_H_
#define VEDB_ASTORE_SEGMENT_RING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "astore/client.h"
#include "astore/frame.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace vedb::astore {

/// One REDO record as recovered from the ring.
struct LogRecord {
  uint64_t lsn = 0;
  std::string payload;
};

/// Segment header status values (Section V-A).
enum class SegmentStatus : uint32_t {
  kEmpty = 0,
  kInUse = 1,
  kFull = 2,
  kError = 3,
};

class SegmentRing {
 public:
  struct Options {
    /// Size of each segment (paper default 1GB; scaled for simulation).
    uint64_t segment_size = 1 * kMiB;
    /// Segments in the ring (paper typical: 50).
    int ring_size = 8;
    /// Replication factor for log segments (paper default: 3).
    int replication = 3;
    /// When set, Reserve() refuses to recycle a slot that still holds
    /// records (NoSpace) instead of silently overwriting the oldest lap.
    /// Retention-managed logs (pub/sub topics) set this and free space
    /// explicitly with TrimBefore(); the REDO log keeps the default
    /// wrap-around behaviour (checkpointing makes old laps dead weight).
    bool forbid_overwrite = false;
  };

  /// Header layout within each segment.
  static constexpr uint64_t kHeaderSize = 64;
  static constexpr uint32_t kHeaderMagic = 0x5245444F;  // "REDO"

  /// Pre-creates all ring segments ("all segments ... are pre-created by
  /// the storage SDK" upon DBEngine initialization).
  static Result<std::unique_ptr<SegmentRing>> Create(AStoreClient* client,
                                                     const Options& options);

  /// A placement decision made under the ring lock; the I/O is performed
  /// later by CommitReserved so reservations can be taken in LSN order
  /// without serializing the writes.
  struct Reservation {
    SegmentHandlePtr seg;
    uint64_t offset = 0;
    size_t slot_idx = 0;
    bool init_header = false;         // first record of a (re)used segment
    SegmentHandlePtr to_mark_full;    // previous segment to stamp kFull
    uint64_t full_start_lsn = 0;
    size_t frame_size = 0;
  };

  /// Reserves ring space for a record of `payload_size` bytes carrying
  /// `lsn`. Cheap (no I/O); call under the caller's LSN-assignment lock so
  /// ring order matches LSN order. Zero-length and larger-than-a-segment
  /// payloads are rejected with InvalidArgument at this boundary (a
  /// zero-length frame is indistinguishable from the end-of-log sentinel
  /// during the recovery scan); with `forbid_overwrite`, a wrap onto a
  /// still-occupied slot returns NoSpace and leaves the cursor untouched.
  Result<Reservation> Reserve(uint64_t lsn, size_t payload_size);

  /// In-flight state of one submitted record between SubmitReserved and
  /// WaitCommit. Heap-held (unique_ptr): the submitted pieces reference
  /// `init_header` and `frame_header` by address, so the object must not
  /// move until the token resolves.
  struct PendingCommit {
    Reservation reservation;
    uint64_t lsn = 0;
    Timestamp begin = 0;
    AppendRing::Token token = 0;
    std::string init_header;
    char frame_header[PackedFrame::kHeaderSize];
  };
  using PendingCommitPtr = std::unique_ptr<PendingCommit>;

  /// Frames the record in place (PackedFrame: 16-byte header encoded into
  /// the pending object, payload never copied) and submits it to the
  /// client's doorbell coalescer: the segment's kInUse header (when this is
  /// the slot's first record), the frame header, and the payload become
  /// chained WRs, in that crash-safe order. QoS admission for the frame
  /// bytes happens here (before any astore lock). `payload` must stay
  /// alive until WaitCommit returns.
  Result<PendingCommitPtr> SubmitReserved(const Reservation& reservation,
                                          uint64_t lsn, Slice payload);

  /// Parks on the record's completion token. OK means durable on all
  /// replicas (persist-checked); only then is the predecessor segment
  /// stamped kFull — never before the record exists, so a crash between
  /// the two leaves a lingering kInUse, not a premature kFull. On replica
  /// failure the broken slot is replaced and Busy tells the caller to
  /// re-reserve.
  Status WaitCommit(PendingCommitPtr pending);

  /// SubmitReserved + WaitCommit in one call. With concurrent committers
  /// the records still coalesce: every caller parked in WaitCommit is a
  /// candidate flush leader for the whole queue.
  Status CommitReserved(const Reservation& reservation, uint64_t lsn,
                        Slice payload);

  /// Reserve + CommitReserved in one call (single-writer convenience).
  Status AppendRecord(uint64_t lsn, Slice payload);

  /// Retention: frees every non-current slot whose records are ALL below
  /// `trim_lsn` — the old segment is deleted cluster-wide through the CM
  /// protocol (client Delete), and a fresh pre-created empty segment takes
  /// its slot so the ring keeps its size. Returns the number of segments
  /// freed. Callers persist their trim watermark BEFORE trimming so a
  /// crash between the two only leaks retention, never records.
  Result<int> TrimBefore(uint64_t trim_lsn);

  /// Where one recovered record physically lives (for consumers that read
  /// records in place instead of replaying them, e.g. topic partitions).
  struct RecordLocation {
    uint64_t lsn = 0;
    SegmentId segment = 0;
    uint64_t offset = 0;        // of the frame, not the payload
    uint32_t payload_size = 0;
  };

  /// Result of crash recovery over a ring.
  struct Recovered {
    /// LSN to resume from (one past the last durable record); 0 if empty.
    uint64_t next_lsn = 0;
    /// All durable records at or after the requested LSN, in order.
    std::vector<LogRecord> records;
    /// Physical location of each record, parallel to `records`.
    std::vector<RecordLocation> locations;
  };

  /// Recovers ring state from the segments owned by `client_id` in the CM:
  /// re-opens them, binary-searches headers for the largest start LSN, and
  /// scans records with LSN >= `from_lsn`. A fresh SegmentRing positioned
  /// for further appends can then be constructed with Create (new ring) or
  /// Attach.
  static Result<Recovered> Recover(AStoreClient* client,
                                   const std::vector<SegmentId>& segment_ids,
                                   uint64_t from_lsn, const Options& options);

  /// Segment ids currently in the ring, ring order.
  std::vector<SegmentId> segment_ids() const;

  /// Number of segment-replacement events (frozen segments swapped out).
  uint64_t replaced_count() const {
    vedb::MutexLock lk(&mu_);
    return replaced_;
  }

  /// Number of segments freed by TrimBefore() so far.
  uint64_t trimmed_count() const {
    vedb::MutexLock lk(&mu_);
    return trimmed_;
  }

 private:
  SegmentRing(AStoreClient* client, Options options,
              std::vector<SegmentHandlePtr> segments);

  static std::string EncodeHeader(SegmentStatus status, uint64_t start_lsn);
  static bool DecodeHeader(Slice in, SegmentStatus* status,
                           uint64_t* start_lsn);

  /// Scans one segment's records, appending those with lsn >= from_lsn
  /// (and their physical locations when `locs` is non-null).
  /// Returns the LSN one past the last valid record (0 if none).
  static Result<uint64_t> ScanSegment(AStoreClient* client,
                                      const SegmentHandlePtr& seg,
                                      uint64_t from_lsn, uint64_t start_lsn,
                                      std::vector<LogRecord>* out,
                                      std::vector<RecordLocation>* locs);

  Status ReplaceSegmentSlot(size_t idx, const SegmentHandlePtr& broken);

  AStoreClient* client_;
  Options options_;

  mutable vedb::Mutex mu_{"astore.ring"};
  std::vector<SegmentHandlePtr> segments_ GUARDED_BY(mu_);
  std::vector<uint64_t> slot_start_lsn_ GUARDED_BY(mu_);
  // Highest LSN reserved into each slot; with slot_used_ this is what
  // TrimBefore and the forbid_overwrite check reason about.
  std::vector<uint64_t> slot_last_lsn_ GUARDED_BY(mu_);
  std::vector<bool> slot_used_ GUARDED_BY(mu_);
  size_t cur_idx_ GUARDED_BY(mu_) = 0;
  uint64_t cur_offset_ GUARDED_BY(mu_) = kHeaderSize;
  // Header written for current segment.
  bool cur_initialized_ GUARDED_BY(mu_) = false;
  uint64_t replaced_ GUARDED_BY(mu_) = 0;
  uint64_t trimmed_ GUARDED_BY(mu_) = 0;

  // Observability (resolved once at construction; see obs/metrics.h).
  obs::Counter* appends_ = nullptr;
  obs::HistogramMetric* append_ns_ = nullptr;
  obs::Counter* replacements_ = nullptr;
  obs::Counter* trims_ = nullptr;
};

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_SEGMENT_RING_H_
