// AStore Cluster Manager (CM, Section IV-A). The central control-plane node:
// storage-node registry and health tracking, segment routing, capacity/load
// aware placement, client leases, and replica rebuild after node failure.
// All interactions are RPC; the CM never touches the data plane.
//
// The control plane itself is highly available: a CM can run as one member
// of a replication group. The member whose term says so is the primary; it
// serves every control RPC and ships each state change to the standbys as a
// checksummed CmRecord (see cm_record.h). Standbys reject control RPCs with
// Stale("not primary") and watch the primary's health; when it dies, the
// lowest-node-id live standby that can reach a majority of the group
// promotes itself under the next term. Terms are `(round << 16) | node_id`,
// so a term names exactly one possible leader and two CMs can never both be
// primary for the same term — which is the no-split-brain argument: a lease
// granted in term T was granted by the one CM that can ever lead T.

#ifndef VEDB_ASTORE_CLUSTER_MANAGER_H_
#define VEDB_ASTORE_CLUSTER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "astore/cm_record.h"
#include "astore/segment.h"
#include "astore/server.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "net/rpc.h"
#include "obs/metrics.h"
#include "sim/env.h"

namespace vedb::astore {

/// One member of a CM replication group: its election/tiebreak id and the
/// node it runs on. Every member gets the same list (self included).
struct CmPeer {
  uint32_t node_id = 0;
  sim::SimNode* node = nullptr;
};

class ClusterManager {
 public:
  struct Options {
    /// Lease granted to clients; writes from a client whose lease expired
    /// are rejected locally (Section IV-C's client-failure scenario).
    Duration lease_duration = 2 * kSecond;
    /// Heartbeat polling period of the CM's background task.
    Duration heartbeat_period = 50 * kMillisecond;
    /// A node missing heartbeats for this long is declared dead. Also the
    /// time a standby waits on an unreachable primary before electing.
    Duration failure_timeout = 200 * kMillisecond;
    /// Rebuild lost replicas automatically when a node dies.
    bool auto_rebuild = true;
    /// CPU cost of processing one control request on the CM.
    Duration control_op_cost = 200 * kMicrosecond;
    /// This member's identity within its replication group (< 65536); the
    /// election tiebreak — the lowest live id wins. 0 with no peers is the
    /// classic standalone CM.
    uint32_t node_id = 0;
    /// Per-peer RPC deadline when shipping replication records or pinging.
    Duration replication_deadline = 2 * kMillisecond;
    /// Segment-id gap a fresh primary skips on promotion, so an id whose
    /// kCreateBegin record died with the old primary can never be handed
    /// out twice.
    uint64_t failover_id_gap = 64;
  };

  /// The CM runs on `node` and registers its services there.
  ClusterManager(sim::SimEnvironment* env, net::RpcTransport* rpc,
                 sim::SimNode* node, const Options& options);

  /// Wires the replication group. Call once on every member, with the same
  /// list (self included), before StartBackground. The lowest node id is
  /// the initial primary of term (1, lowest_id).
  void SetPeers(const std::vector<CmPeer>& peers);

  /// Adds a storage server to the cluster (registration). Registration is
  /// wiring, not replicated state: every group member is registered with
  /// the same servers by the deployment.
  void RegisterServer(AStoreServer* server);

  /// Starts the health-check/election/rebuild background task.
  void StartBackground(sim::ActorGroup* group);

  /// Flags the background task to stop without waiting for it. When
  /// tearing down several CMs (or a CM plus other periodic actors) at a
  /// fixed virtual time, request ALL shutdowns first and only then drain:
  /// a drain is a real-time wait during which still-unflagged loops would
  /// free-run virtual time nondeterministically.
  void RequestShutdown() { shutdown_.store(true); }

  /// Stops the background task and drains it: on return the heartbeat
  /// actor has observed shutdown and exited its loop, so a demoted primary
  /// can never issue a late rebuild after its owner tore it down.
  /// Idempotent; safe to call from actors and guest threads alike.
  void Shutdown();

  sim::SimNode* node() { return node_; }

  // ---- Replication/role introspection. ----

  /// True when this member currently believes it is the primary.
  bool IsPrimary() const;

  /// The term this member is operating under.
  uint64_t Term() const;

  uint32_t NodeId() const { return options_.node_id; }

  /// Node id of the member this one believes leads the current term.
  uint32_t LeaderId() const;

  /// Terms in which THIS member granted at least one lease. The chaos
  /// campaign asserts these sets are pairwise disjoint across members — two
  /// CMs never both grant leases in the same term.
  std::vector<uint64_t> GrantedTerms() const;

  /// Canonical byte encoding of the whole route table (ascending id).
  /// Byte-equality across members — or across a crash/replay — is the
  /// replication test oracle.
  std::string DebugEncodeRoutes() const;

  /// Runs one background tick (health sweep or standby monitor) right now.
  /// Test hook: the caller must be a registered actor, since elections,
  /// snapshot pulls, and rebuilds issue RPCs that advance virtual time.
  void TickForTest() { Tick(); }

  // ---- Direct (in-process) control API. The RPC services wrap these. ----

  /// Grants or renews a client lease; returns the new expiry.
  Timestamp AcquireLease(ClientId client);

  /// True if `client` holds an unexpired lease.
  bool LeaseValid(ClientId client) const;

  /// Creates a segment of `size` bytes replicated `replication` times,
  /// owned by `client`. Placement favours nodes with most free capacity.
  /// `rpc_client` is the node issuing the allocation RPCs to the chosen
  /// servers (the calling actor's node).
  Result<SegmentRoute> CreateSegment(sim::SimNode* rpc_client,
                                     ClientId client, uint64_t size,
                                     int replication);

  /// Returns the current route, or NotFound for deleted/unknown segments.
  Result<SegmentRoute> GetRoute(SegmentId id) const;

  /// Reassigns segment ownership (the "client B reclaims" scenario).
  Status ReclaimSegment(SegmentId id, ClientId new_owner);

  /// Deletes a segment: drops the route and asks replicas to release the
  /// space (deferred on the servers).
  Status DeleteSegment(sim::SimNode* rpc_client, ClientId client,
                       SegmentId id);

  /// Segment ids owned by `client`, ascending (creation order). Used by a
  /// recovering DBEngine to rediscover its SegmentRing.
  std::vector<SegmentId> ListSegments(ClientId client) const;

  /// Number of live storage nodes.
  size_t AliveServerCount() const;

  /// Number of tracked (not yet pruned) client leases, expired included.
  size_t LeaseCount() const {
    vedb::MutexLock lk(&mu_);
    return leases_.size();
  }

  /// Runs one health-check sweep immediately (test hook; primary only —
  /// a standby sweep would race the primary's replicated decisions).
  void CheckHealthNow();

  /// Quarantines one replica reported irreparably corrupt (scrubber
  /// escalation, also reachable via the "cm.report_corrupt" RPC): drops
  /// `node_name` from the segment's route, bumps the epoch so every cached
  /// copy of the old route dies, and — with auto_rebuild — re-replicates
  /// just this segment onto a healthy server, excluding the reporter.
  /// Refuses (Unavailable) to quarantine the last replica: a corrupt copy
  /// still beats no copy, and the caller keeps serving what it can.
  /// A report against a replica the route no longer lists is OK/no-op.
  Status QuarantineReplica(const std::string& node_name, SegmentId id);

 private:
  struct ServerInfo {
    AStoreServer* server = nullptr;
    bool marked_dead = false;
  };

  // What a cm.ping response carries.
  struct PeerStatus {
    uint64_t term = 0;
    uint32_t leader_id = 0;
    uint64_t last_seq = 0;
  };

  void RegisterRpcServices();
  void HealthLoop();
  void Tick();
  void PrimaryTick();
  void StandbyTick();
  void TryElect();
  void Promote();
  void RebuildSegmentsOf(const std::string& dead_node);
  // Re-replicates one segment onto a freshly picked healthy server (never
  // one in `extra_exclude` or already carrying a replica), pulling the
  // bytes from `source`. Call with NO locks held; best-effort — on failure
  // the segment stays degraded until the next sweep or report.
  void RebuildOneReplica(SegmentId id, uint64_t size,
                         const ReplicaLocation& source,
                         const std::vector<std::string>& extra_exclude);
  Result<std::vector<AStoreServer*>> PickServersLocked(
      int count, const std::vector<std::string>& exclude) const REQUIRES(mu_);

  // ---- Replication internals. ----
  bool IsPrimaryLocked() const REQUIRES(mu_) {
    return leader_id_ == options_.node_id;
  }
  // Stamps term+seq on a new record; the caller mutates state under the
  // same critical section so the record and the change are atomic.
  CmRecord MakeRecordLocked(CmRecordType type) REQUIRES(mu_);
  // Ships records to every peer synchronously. Call with NO locks held.
  void ShipRecords(const std::vector<CmRecord>& records);
  // Applies one replicated record to local state (standby side).
  void ApplyRecordLocked(const CmRecord& rec) REQUIRES(mu_);
  // Adopts `term` if it is newer than ours: updates leadership belief and
  // flags a snapshot resync. How a demoted/partitioned member steps down.
  void AdoptTermIfNewer(uint64_t term);
  // Gate for client-facing services: Stale unless primary; on success the
  // current term is prefixed to `resp` for the client's staleness check.
  Status RequirePrimaryAndStamp(std::string* resp);
  Status PingPeer(const CmPeer& peer, PeerStatus* out);
  Status PullSnapshotFromLeader();
  void InstallSnapshot(const CmSnapshot& snap);
  CmSnapshot BuildSnapshotLocked() const REQUIRES(mu_);
  uint64_t LastSeq() const;

  sim::SimEnvironment* env_;
  net::RpcTransport* rpc_;
  sim::SimNode* node_;
  Options options_;

  // The replication group, fixed by SetPeers before background start and
  // never mutated after (read without a lock). Empty => standalone.
  std::vector<CmPeer> peers_;

  // Lock order: cm.repl before cm.state (the replicate handler applies a
  // consecutive record run under the stream lock); cm.state before
  // astore.server and sim.node (the health sweep and placement read
  // server/node state under the CM lock). Nothing may call back into the
  // CM while holding those, and no lock is ever held across an RPC.
  mutable vedb::Mutex mu_{"cm.state"};
  std::map<std::string, ServerInfo> servers_ GUARDED_BY(mu_);
  std::map<SegmentId, SegmentRoute> routes_ GUARDED_BY(mu_);
  std::map<ClientId, Timestamp> leases_ GUARDED_BY(mu_);
  std::set<SegmentId> pending_creates_ GUARDED_BY(mu_);
  // Segments whose last rebuild attempt found no usable target (e.g. every
  // spare node still held a stale pending-clean copy). Retried on each
  // health sweep, so a momentary placement dead-end self-heals instead of
  // leaving the segment under-replicated forever. Primary-local.
  std::set<SegmentId> pending_rebuilds_ GUARDED_BY(mu_);
  // Nodes whose copy of a segment was quarantined as irreparably corrupt
  // (latent bad cells). Never picked again as a rebuild target for that
  // segment: re-hosting it on the same PMem region would re-corrupt.
  std::map<SegmentId, std::set<std::string>> quarantined_nodes_
      GUARDED_BY(mu_);
  SegmentId next_segment_id_ GUARDED_BY(mu_) = 1;
  uint64_t term_ GUARDED_BY(mu_) = 0;
  uint32_t leader_id_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;  // primary's record stream position
  std::set<uint64_t> granted_terms_ GUARDED_BY(mu_);

  // Replication stream state (standby ingest + monitor bookkeeping).
  mutable vedb::Mutex repl_mu_{"cm.repl"};
  uint64_t last_applied_ GUARDED_BY(repl_mu_) = 0;
  std::map<uint64_t, CmRecord> reorder_ GUARDED_BY(repl_mu_);
  bool need_snapshot_ GUARDED_BY(repl_mu_) = false;
  Timestamp leader_down_since_ GUARDED_BY(repl_mu_) = 0;
  uint64_t prev_applied_seen_ GUARDED_BY(repl_mu_) = 0;

  obs::Gauge* term_gauge_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* quarantines_ = nullptr;
  obs::Counter* rebuilds_ = nullptr;
  std::map<uint32_t, obs::Gauge*> lag_gauges_;  // fixed at SetPeers

  std::atomic<bool> shutdown_{false};
  // Drain handshake for Shutdown(): counts live background actors. Plain
  // std::mutex (not vedb::Mutex) because the waiter parks in real time
  // under a VirtualClock::ExternalWaitScope. Waiver(thread-annotations):
  // bg_active_ is only touched under bg_mu_.
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  int bg_active_ = 0;
};

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_CLUSTER_MANAGER_H_
