// AStore Cluster Manager (CM, Section IV-A). The central control-plane node:
// storage-node registry and health tracking, segment routing, capacity/load
// aware placement, client leases, and replica rebuild after node failure.
// All interactions are RPC; the CM never touches the data plane.

#ifndef VEDB_ASTORE_CLUSTER_MANAGER_H_
#define VEDB_ASTORE_CLUSTER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "astore/segment.h"
#include "astore/server.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "net/rpc.h"
#include "sim/env.h"

namespace vedb::astore {

class ClusterManager {
 public:
  struct Options {
    /// Lease granted to clients; writes from a client whose lease expired
    /// are rejected locally (Section IV-C's client-failure scenario).
    Duration lease_duration = 2 * kSecond;
    /// Heartbeat polling period of the CM's background task.
    Duration heartbeat_period = 50 * kMillisecond;
    /// A node missing heartbeats for this long is declared dead.
    Duration failure_timeout = 200 * kMillisecond;
    /// Rebuild lost replicas automatically when a node dies.
    bool auto_rebuild = true;
    /// CPU cost of processing one control request on the CM.
    Duration control_op_cost = 200 * kMicrosecond;
  };

  /// The CM runs on `node` and registers its services there.
  ClusterManager(sim::SimEnvironment* env, net::RpcTransport* rpc,
                 sim::SimNode* node, const Options& options);

  /// Adds a storage server to the cluster (registration).
  void RegisterServer(AStoreServer* server);

  /// Starts health-checking/rebuild background task.
  void StartBackground(sim::ActorGroup* group);
  void Shutdown() { shutdown_.store(true); }

  sim::SimNode* node() { return node_; }

  // ---- Direct (in-process) control API. The RPC services wrap these. ----

  /// Grants or renews a client lease; returns the new expiry.
  Timestamp AcquireLease(ClientId client);

  /// True if `client` holds an unexpired lease.
  bool LeaseValid(ClientId client) const;

  /// Creates a segment of `size` bytes replicated `replication` times,
  /// owned by `client`. Placement favours nodes with most free capacity.
  /// `rpc_client` is the node issuing the allocation RPCs to the chosen
  /// servers (the calling actor's node).
  Result<SegmentRoute> CreateSegment(sim::SimNode* rpc_client,
                                     ClientId client, uint64_t size,
                                     int replication);

  /// Returns the current route, or NotFound for deleted/unknown segments.
  Result<SegmentRoute> GetRoute(SegmentId id) const;

  /// Reassigns segment ownership (the "client B reclaims" scenario).
  Status ReclaimSegment(SegmentId id, ClientId new_owner);

  /// Deletes a segment: drops the route and asks replicas to release the
  /// space (deferred on the servers).
  Status DeleteSegment(sim::SimNode* rpc_client, ClientId client,
                       SegmentId id);

  /// Segment ids owned by `client`, ascending (creation order). Used by a
  /// recovering DBEngine to rediscover its SegmentRing.
  std::vector<SegmentId> ListSegments(ClientId client) const;

  /// Number of live storage nodes.
  size_t AliveServerCount() const;

  /// Number of tracked (not yet pruned) client leases, expired included.
  size_t LeaseCount() const {
    vedb::MutexLock lk(&mu_);
    return leases_.size();
  }

  /// Runs one health-check sweep immediately (test hook).
  void CheckHealthNow();

 private:
  struct ServerInfo {
    AStoreServer* server = nullptr;
    bool marked_dead = false;
  };

  void RegisterRpcServices();
  void HealthLoop();
  void RebuildSegmentsOf(const std::string& dead_node);
  Result<std::vector<AStoreServer*>> PickServersLocked(
      int count, const std::vector<std::string>& exclude) const REQUIRES(mu_);

  sim::SimEnvironment* env_;
  net::RpcTransport* rpc_;
  sim::SimNode* node_;
  Options options_;

  // Lock order: cm.state is taken before astore.server and sim.node (the
  // health sweep and placement read server/node state under the CM lock);
  // nothing may call back into the CM while holding those.
  mutable vedb::Mutex mu_{"cm.state"};
  std::map<std::string, ServerInfo> servers_ GUARDED_BY(mu_);
  std::map<SegmentId, SegmentRoute> routes_ GUARDED_BY(mu_);
  std::map<ClientId, Timestamp> leases_ GUARDED_BY(mu_);
  SegmentId next_segment_id_ GUARDED_BY(mu_) = 1;

  std::atomic<bool> shutdown_{false};
};

}  // namespace vedb::astore

#endif  // VEDB_ASTORE_CLUSTER_MANAGER_H_
