#include "astore/append_ring.h"

#include <algorithm>

#include "astore/client.h"

namespace vedb::astore {

AppendRing::AppendRing(AStoreClient* client, const AppendRingOptions& options)
    : client_(client),
      options_(options),
      cond_(client->env()->clock(), "astore.append_ring") {}

Result<AppendRing::Token> AppendRing::Submit(SegmentHandlePtr handle,
                                             std::vector<RecordPiece> pieces,
                                             qos::Ticket ticket) {
  if (handle == nullptr || pieces.empty()) {
    return Status::InvalidArgument("empty record submission");
  }
  uint64_t bytes = 0;
  for (const RecordPiece& p : pieces) {
    if (p.data.empty() || p.offset > handle->size() ||
        p.data.size() > handle->size() - p.offset) {
      return Status::InvalidArgument("record piece outside the segment");
    }
    bytes += p.data.size();
  }
  Entry e;
  e.handle = std::move(handle);
  e.pieces = std::move(pieces);
  e.bytes = bytes;
  e.ticket = std::move(ticket);
  vedb::MutexLock lk(&mu_);
  e.seq = next_seq_++;
  const Token token = e.seq;
  pending_bytes_ += e.bytes;
  pending_.push_back(std::move(e));
  return token;
}

Status AppendRing::Wait(Token token) {
  sim::VirtualClock* clock = client_->env()->clock();
  vedb::MutexLock lk(&mu_);
  while (true) {
    auto it = done_.find(token);
    if (it != done_.end()) {
      Status s = std::move(it->second);
      done_.erase(it);
      return s;
    }
    if (flushing_ || pending_.empty()) {
      // Follower: a leader is posting (possibly carrying our token), or our
      // token already left the queue with it. Park until our result lands
      // or the ring goes idle — waiting on !flushing_ alone would wedge a
      // completed waiter behind the NEXT leader's flush, serializing
      // producers that should be feeding that leader's doorbell.
      cond_.Wait(&mu_, [&] { return !flushing_ || done_.count(token) != 0; });
      continue;
    }

    // Leader. Optionally linger so concurrent producers can join this
    // doorbell; the ring stays marked busy, so late submissions queue
    // behind us instead of racing a second flush.
    flushing_ = true;
    if (options_.nagle_window > 0 &&
        pending_bytes_ < options_.batch_byte_cap) {
      lk.Unlock();
      clock->SleepFor(options_.nagle_window);
      lk.Lock();
    }
    std::deque<Entry> batch;
    batch.swap(pending_);
    pending_bytes_ = 0;
    lk.Unlock();

    // Split the drained run into groups of consecutive same-segment
    // records, capped by bytes and record count; each group posts as one
    // chained-WR doorbell. Submission order is preserved throughout, so
    // completions resolve in LSN order for in-order producers.
    std::vector<std::pair<Token, Status>> results;
    results.reserve(batch.size());
    std::vector<qos::Ticket> tickets;
    tickets.reserve(batch.size());
    size_t i = 0;
    while (i < batch.size()) {
      size_t j = i;
      uint64_t group_bytes = 0;
      while (j < batch.size() && batch[j].handle == batch[i].handle &&
             j - i < options_.max_batch_records &&
             (j == i ||
              group_bytes + batch[j].bytes <= options_.batch_byte_cap)) {
        group_bytes += batch[j].bytes;
        ++j;
      }
      std::vector<const std::vector<RecordPiece>*> records;
      records.reserve(j - i);
      for (size_t k = i; k < j; ++k) records.push_back(&batch[k].pieces);
      const Status s = client_->WriteRecordGroup(batch[i].handle, records);
      for (size_t k = i; k < j; ++k) {
        results.emplace_back(batch[k].seq, s);
        tickets.push_back(std::move(batch[k].ticket));
      }
      i = j;
    }
    // QoS tickets release outside mu_: their release path takes qos.*
    // locks, which the declared contracts order strictly before astore.*.
    tickets.clear();

    lk.Lock();
    for (auto& [seq, s] : results) done_.emplace(seq, std::move(s));
    flushing_ = false;
    lk.Unlock();
    cond_.NotifyAll();
    lk.Lock();
  }
}

}  // namespace vedb::astore
