#include "astore/cm_record.h"

#include "common/coding.h"
#include "common/crc32.h"

namespace vedb::astore {

namespace {

constexpr uint32_t kRecordMagic = 0x434d5243;    // "CMRC"
constexpr uint32_t kSnapshotMagic = 0x434d534e;  // "CMSN"

// Appends crc32c(out[body_start:]) to `out`, masked so records containing
// embedded CRCs stay well distributed.
void SealCrc(std::string* out, size_t body_start) {
  const uint32_t crc =
      Crc32c(0, out->data() + body_start, out->size() - body_start);
  PutFixed32(out, MaskCrc(crc));
}

// Verifies the masked CRC of `body` (the bytes from magic through payload)
// against the next 4 bytes of `in`, consuming them.
bool CheckCrc(Slice* in, const char* body, size_t body_len) {
  Slice raw;
  if (!GetFixedBytes(in, 4, &raw)) return false;
  const uint32_t expect = UnmaskCrc(DecodeFixed32(raw.data()));
  return Crc32c(0, body, body_len) == expect;
}

}  // namespace

void EncodeCmRecord(std::string* out, const CmRecord& rec) {
  const size_t start = out->size();
  PutFixed32(out, kRecordMagic);
  PutFixed64(out, rec.term);
  PutFixed64(out, rec.seq);
  out->push_back(static_cast<char>(rec.type));

  std::string payload;
  switch (rec.type) {
    case CmRecordType::kLease:
      PutFixed64(&payload, rec.client);
      PutFixed64(&payload, rec.expiry);
      break;
    case CmRecordType::kLeasePrune:
      PutFixed64(&payload, rec.cutoff);
      break;
    case CmRecordType::kRouteUpsert:
      EncodeSegmentRoute(&payload, rec.route);
      break;
    case CmRecordType::kRouteErase:
    case CmRecordType::kCreateBegin:
      PutFixed64(&payload, rec.segment);
      break;
  }
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  SealCrc(out, start);
}

bool DecodeCmRecord(Slice* in, CmRecord* rec) {
  const char* body = in->data();
  Slice raw;
  if (!GetFixedBytes(in, 4, &raw)) return false;
  if (DecodeFixed32(raw.data()) != kRecordMagic) return false;
  if (!GetFixedBytes(in, 8, &raw)) return false;
  rec->term = DecodeFixed64(raw.data());
  if (!GetFixedBytes(in, 8, &raw)) return false;
  rec->seq = DecodeFixed64(raw.data());
  if (!GetFixedBytes(in, 1, &raw)) return false;
  const uint8_t type = static_cast<uint8_t>(raw.data()[0]);
  if (type < static_cast<uint8_t>(CmRecordType::kLease) ||
      type > static_cast<uint8_t>(CmRecordType::kCreateBegin)) {
    return false;
  }
  rec->type = static_cast<CmRecordType>(type);
  if (!GetFixedBytes(in, 4, &raw)) return false;
  const uint32_t payload_len = DecodeFixed32(raw.data());
  Slice payload;
  if (!GetFixedBytes(in, payload_len, &payload)) return false;
  if (!CheckCrc(in, body, static_cast<size_t>(in->data() - body))) {
    return false;
  }

  rec->client = 0;
  rec->expiry = 0;
  rec->cutoff = 0;
  rec->route = SegmentRoute{};
  rec->segment = 0;
  switch (rec->type) {
    case CmRecordType::kLease:
      if (!GetFixedBytes(&payload, 8, &raw)) return false;
      rec->client = DecodeFixed64(raw.data());
      if (!GetFixedBytes(&payload, 8, &raw)) return false;
      rec->expiry = DecodeFixed64(raw.data());
      break;
    case CmRecordType::kLeasePrune:
      if (!GetFixedBytes(&payload, 8, &raw)) return false;
      rec->cutoff = DecodeFixed64(raw.data());
      break;
    case CmRecordType::kRouteUpsert:
      if (!DecodeSegmentRoute(&payload, &rec->route)) return false;
      break;
    case CmRecordType::kRouteErase:
    case CmRecordType::kCreateBegin:
      if (!GetFixedBytes(&payload, 8, &raw)) return false;
      rec->segment = DecodeFixed64(raw.data());
      break;
  }
  return payload.empty();
}

void EncodeCmSnapshot(std::string* out, const CmSnapshot& snap) {
  const size_t start = out->size();
  PutFixed32(out, kSnapshotMagic);
  PutFixed64(out, snap.term);
  PutFixed32(out, snap.leader_id);
  PutFixed64(out, snap.last_seq);
  PutFixed64(out, snap.next_segment_id);
  PutFixed32(out, static_cast<uint32_t>(snap.routes.size()));
  for (const SegmentRoute& route : snap.routes) {
    EncodeSegmentRoute(out, route);
  }
  PutFixed32(out, static_cast<uint32_t>(snap.leases.size()));
  for (const auto& [client, expiry] : snap.leases) {
    PutFixed64(out, client);
    PutFixed64(out, expiry);
  }
  PutFixed32(out, static_cast<uint32_t>(snap.pending_creates.size()));
  for (SegmentId id : snap.pending_creates) PutFixed64(out, id);
  SealCrc(out, start);
}

bool DecodeCmSnapshot(Slice* in, CmSnapshot* snap) {
  const char* body = in->data();
  Slice raw;
  if (!GetFixedBytes(in, 4, &raw)) return false;
  if (DecodeFixed32(raw.data()) != kSnapshotMagic) return false;
  if (!GetFixedBytes(in, 8, &raw)) return false;
  snap->term = DecodeFixed64(raw.data());
  if (!GetFixedBytes(in, 4, &raw)) return false;
  snap->leader_id = DecodeFixed32(raw.data());
  if (!GetFixedBytes(in, 8, &raw)) return false;
  snap->last_seq = DecodeFixed64(raw.data());
  if (!GetFixedBytes(in, 8, &raw)) return false;
  snap->next_segment_id = DecodeFixed64(raw.data());

  if (!GetFixedBytes(in, 4, &raw)) return false;
  uint32_t n = DecodeFixed32(raw.data());
  snap->routes.clear();
  for (uint32_t i = 0; i < n; ++i) {
    SegmentRoute route;
    if (!DecodeSegmentRoute(in, &route)) return false;
    snap->routes.push_back(std::move(route));
  }

  if (!GetFixedBytes(in, 4, &raw)) return false;
  n = DecodeFixed32(raw.data());
  snap->leases.clear();
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetFixedBytes(in, 8, &raw)) return false;
    const ClientId client = DecodeFixed64(raw.data());
    if (!GetFixedBytes(in, 8, &raw)) return false;
    snap->leases.emplace_back(client, DecodeFixed64(raw.data()));
  }

  if (!GetFixedBytes(in, 4, &raw)) return false;
  n = DecodeFixed32(raw.data());
  snap->pending_creates.clear();
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetFixedBytes(in, 8, &raw)) return false;
    snap->pending_creates.push_back(DecodeFixed64(raw.data()));
  }
  return CheckCrc(in, body, static_cast<size_t>(in->data() - body));
}

}  // namespace vedb::astore
