#include "astore/server.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace vedb::astore {

AStoreServer::AStoreServer(sim::SimEnvironment* env, net::RpcTransport* rpc,
                           net::RdmaFabric* fabric, sim::SimNode* node,
                           const Options& options)
    : env_(env), rpc_(rpc), fabric_(fabric), node_(node), options_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  allocs_ = reg.GetCounter("astore.server.allocs", {{"node", node_->name()}});
  releases_ =
      reg.GetCounter("astore.server.releases", {{"node", node_->name()}});
  live_segments_ =
      reg.GetGauge("astore.server.live_segments", {{"node", node_->name()}});
  pmem_ = std::make_unique<pmem::PmemDevice>(
      options_.pmem_capacity, options_.ddio_enabled, env_->NextSeed());
  // "The AStore Server will register the full physical address of PMem
  // devices to the RDMA NIC" (Section IV-A).
  region_ = fabric_->RegisterMemory(node_, pmem_.get());

  storage_base_ = ServerLayout::kSuperblockSize +
                  options_.max_segments * ServerLayout::kIoMetaSlotSize;
  // Round up to extent alignment.
  storage_base_ =
      (storage_base_ + ServerLayout::kExtentSize - 1) /
      ServerLayout::kExtentSize * ServerLayout::kExtentSize;
  VEDB_CHECK(storage_base_ < options_.pmem_capacity,
             "PMem capacity too small for metadata areas");
  const uint64_t extents =
      (options_.pmem_capacity - storage_base_) / ServerLayout::kExtentSize;
  extent_used_.assign(extents, false);

  rpc_->RegisterService(node_, "astore.alloc",
                        [this](Slice req, std::string* resp) {
                          return HandleAlloc(req, resp);
                        });
  rpc_->RegisterService(node_, "astore.release",
                        [this](Slice req, std::string* resp) {
                          return HandleRelease(req, resp);
                        });
  rpc_->RegisterService(node_, "astore.pull",
                        [this](Slice req, std::string* resp) {
                          return HandlePull(req, resp);
                        });
}

void AStoreServer::StartBackground(sim::ActorGroup* group) {
  group->Spawn([this] { BackgroundLoop(); });
}

void AStoreServer::BackgroundLoop() {
  while (!shutdown_.load()) {
    env_->clock()->SleepFor(options_.background_period);
    vedb::MutexLock lk(&mu_);
    CleanExpiredLocked(env_->clock()->Now());
  }
}

void AStoreServer::CleanExpiredLocked(Timestamp now) {
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second.pending_clean && it->second.clean_deadline <= now) {
      FreeExtentsLocked(it->second.base, it->second.size);
      // Invalidate the persisted segment-meta so a later RestartFromPmem
      // does not resurrect a released segment. An in-bounds local write
      // cannot fail; treat anything else as a device bug.
      const std::string zeros(24, '\0');
      Status s = pmem_->WriteLocal(ServerLayout::kSuperblockSize +
                                       it->second.io_meta_slot *
                                           ServerLayout::kIoMetaSlotSize,
                                   Slice(zeros));
      VEDB_CHECK(s.ok(), "segment-meta invalidation failed");
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  live_segments_->Set(static_cast<int64_t>(segments_.size()));
}

uint64_t AStoreServer::FreeCapacity() const {
  vedb::MutexLock lk(&mu_);
  uint64_t free_extents = 0;
  for (bool used : extent_used_) {
    if (!used) free_extents++;
  }
  return free_extents * ServerLayout::kExtentSize;
}

size_t AStoreServer::LiveSegmentCount() const {
  vedb::MutexLock lk(&mu_);
  size_t n = 0;
  for (const auto& [id, seg] : segments_) {
    if (!seg.pending_clean) n++;
  }
  return n;
}

bool AStoreServer::HasSegment(SegmentId id) const {
  vedb::MutexLock lk(&mu_);
  auto it = segments_.find(id);
  return it != segments_.end() && !it->second.pending_clean;
}

bool AStoreServer::HoldsSegmentStorage(SegmentId id) const {
  vedb::MutexLock lk(&mu_);
  auto it = segments_.find(id);
  if (it == segments_.end()) return false;
  // An expired pending-clean copy no longer blocks an Allocate of the same
  // id (Allocate reclaims expired entries on entry), so it doesn't count.
  return !it->second.pending_clean ||
         it->second.clean_deadline > env_->clock()->Now();
}

std::vector<SegmentId> AStoreServer::LiveSegmentIds() const {
  vedb::MutexLock lk(&mu_);
  std::vector<SegmentId> out;
  for (const auto& [id, seg] : segments_) {
    if (!seg.pending_clean) out.push_back(id);
  }
  return out;
}

Result<std::pair<uint64_t, uint64_t>> AStoreServer::GetLocalSegment(
    SegmentId id) const {
  vedb::MutexLock lk(&mu_);
  auto it = segments_.find(id);
  if (it == segments_.end() || it->second.pending_clean) {
    return Status::NotFound("segment not on this server");
  }
  return std::make_pair(it->second.base, it->second.size);
}

Result<uint64_t> AStoreServer::AllocExtentsLocked(uint64_t bytes) {
  const uint64_t need =
      (bytes + ServerLayout::kExtentSize - 1) / ServerLayout::kExtentSize;
  uint64_t run = 0;
  for (uint64_t i = 0; i < extent_used_.size(); ++i) {
    if (extent_used_[i]) {
      run = 0;
      continue;
    }
    run++;
    if (run == need) {
      const uint64_t first = i + 1 - need;
      for (uint64_t j = first; j <= i; ++j) extent_used_[j] = true;
      return storage_base_ + first * ServerLayout::kExtentSize;
    }
  }
  return Status::NoSpace("no contiguous PMem extents on " + node_->name());
}

void AStoreServer::FreeExtentsLocked(uint64_t base, uint64_t bytes) {
  const uint64_t first = (base - storage_base_) / ServerLayout::kExtentSize;
  const uint64_t need =
      (bytes + ServerLayout::kExtentSize - 1) / ServerLayout::kExtentSize;
  for (uint64_t j = first; j < first + need; ++j) {
    VEDB_CHECK(extent_used_[j], "double free of PMem extent");
    extent_used_[j] = false;
  }
}

Result<ReplicaLocation> AStoreServer::Allocate(SegmentId id, uint64_t size) {
  VEDB_RETURN_IF_ERROR(
      env_->faults()->MaybeFail("astore.alloc." + node_->name()));
  vedb::MutexLock lk(&mu_);
  // Opportunistically reclaim anything whose cleaning deadline has passed,
  // so allocation pressure cannot outrun the background task — and so an
  // expired stale copy of `id` itself (e.g. left behind by a crash-era
  // rebuild) does not block re-hosting the segment here.
  CleanExpiredLocked(env_->clock()->Now());
  if (segments_.count(id) != 0) {
    return Status::AlreadyExists("segment already on this server");
  }
  VEDB_ASSIGN_OR_RETURN(uint64_t base, AllocExtentsLocked(size));

  LocalSegment seg;
  seg.base = base;
  seg.size = (size + ServerLayout::kExtentSize - 1) /
             ServerLayout::kExtentSize * ServerLayout::kExtentSize;
  seg.io_meta_slot = next_io_meta_slot_++ % options_.max_segments;
  segments_[id] = seg;

  // Persist the segment-meta locally (server-side code path with proper
  // flushes).
  std::string meta;
  PutFixed64(&meta, id);
  PutFixed64(&meta, base);
  PutFixed64(&meta, size);
  const uint64_t meta_off = ServerLayout::kSuperblockSize +
                            seg.io_meta_slot * ServerLayout::kIoMetaSlotSize;
  VEDB_RETURN_IF_ERROR(pmem_->WriteLocal(meta_off, Slice(meta)));
  // The RPC response is the durability ack for the segment-meta: validate
  // the persist ordering before replying.
  VEDB_RETURN_IF_ERROR(
      pmem_->CheckPersisted(meta_off, meta.size(), "astore.server.alloc_ack"));

  ReplicaLocation loc;
  loc.node = node_->name();
  loc.region = region_;
  loc.base_offset = base;
  loc.io_meta_offset = ServerLayout::kSuperblockSize +
                       seg.io_meta_slot * ServerLayout::kIoMetaSlotSize +
                       ServerLayout::kIoMetaClientOffset;
  allocs_->Add(1);
  live_segments_->Set(static_cast<int64_t>(segments_.size()));
  return loc;
}

Status AStoreServer::Release(SegmentId id) {
  vedb::MutexLock lk(&mu_);
  auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("segment not here");
  if (it->second.pending_clean) return Status::OK();  // idempotent
  // Deferred clean: "The AStore Server does not handle the CM's request to
  // clean the stale segment immediately but instead periodically cleans it"
  // (Section IV-C).
  it->second.pending_clean = true;
  it->second.clean_deadline =
      env_->clock()->Now() + options_.cleaning_interval;
  releases_->Add(1);
  return Status::OK();
}

void AStoreServer::ForceClean() {
  vedb::MutexLock lk(&mu_);
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second.pending_clean) {
      FreeExtentsLocked(it->second.base, it->second.size);
      const std::string zeros(24, '\0');
      Status s = pmem_->WriteLocal(ServerLayout::kSuperblockSize +
                                       it->second.io_meta_slot *
                                           ServerLayout::kIoMetaSlotSize,
                                   Slice(zeros));
      VEDB_CHECK(s.ok(), "segment-meta invalidation failed");
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  live_segments_->Set(static_cast<int64_t>(segments_.size()));
}

Result<ReplicaLocation> AStoreServer::LocationOf(SegmentId id) const {
  vedb::MutexLock lk(&mu_);
  auto it = segments_.find(id);
  if (it == segments_.end() || it->second.pending_clean) {
    return Status::NotFound("segment not on this server");
  }
  ReplicaLocation loc;
  loc.node = node_->name();
  loc.region = region_;
  loc.base_offset = it->second.base;
  loc.io_meta_offset = ServerLayout::kSuperblockSize +
                       it->second.io_meta_slot *
                           ServerLayout::kIoMetaSlotSize +
                       ServerLayout::kIoMetaClientOffset;
  return loc;
}

void AStoreServer::CrashProcess() {
  vedb::MutexLock lk(&mu_);
  segments_.clear();
  std::fill(extent_used_.begin(), extent_used_.end(), false);
  next_io_meta_slot_ = 0;
}

Result<size_t> AStoreServer::RestartFromPmem() {
  // Scan the persisted segment-meta slots and rebuild the in-memory
  // segment table + allocator. The scan is local PMem I/O.
  node_->storage()->Access(options_.max_segments *
                           ServerLayout::kIoMetaSlotSize);
  vedb::MutexLock lk(&mu_);
  segments_.clear();
  std::fill(extent_used_.begin(), extent_used_.end(), false);
  size_t recovered = 0;
  uint32_t max_slot = 0;
  for (uint32_t slot = 0; slot < options_.max_segments; ++slot) {
    char meta[24];
    const uint64_t off = ServerLayout::kSuperblockSize +
                         slot * ServerLayout::kIoMetaSlotSize;
    if (!pmem_->Read(off, sizeof(meta), meta).ok()) continue;
    const SegmentId id = DecodeFixed64(meta);
    const uint64_t base = DecodeFixed64(meta + 8);
    const uint64_t size = DecodeFixed64(meta + 16);
    if (id == 0 || size == 0) continue;  // empty/invalidated slot
    if (base < storage_base_ || base + size > options_.pmem_capacity) {
      continue;  // garbage (e.g. from a power failure mid-write)
    }
    LocalSegment seg;
    seg.base = base;
    seg.size = (size + ServerLayout::kExtentSize - 1) /
               ServerLayout::kExtentSize * ServerLayout::kExtentSize;
    seg.io_meta_slot = slot;
    const uint64_t first = (base - storage_base_) / ServerLayout::kExtentSize;
    const uint64_t extents =
        seg.size / ServerLayout::kExtentSize;
    if (first + extents > extent_used_.size()) continue;
    bool clash = false;
    for (uint64_t e = first; e < first + extents; ++e) {
      if (extent_used_[e]) clash = true;
    }
    if (clash) continue;  // overlapping garbage: keep the first claimant
    for (uint64_t e = first; e < first + extents; ++e) {
      extent_used_[e] = true;
    }
    segments_[id] = seg;
    max_slot = std::max(max_slot, slot + 1);
    recovered++;
  }
  next_io_meta_slot_ = max_slot;
  return recovered;
}

Status AStoreServer::HandleAlloc(Slice request, std::string* response) {
  node_->cpu()->Access(0, options_.control_op_cost);
  Slice raw;
  if (!GetFixedBytes(&request, 8, &raw)) {
    return Status::InvalidArgument("alloc request");
  }
  SegmentId id = DecodeFixed64(raw.data());
  if (!GetFixedBytes(&request, 8, &raw)) {
    return Status::InvalidArgument("alloc request");
  }
  uint64_t size = DecodeFixed64(raw.data());
  VEDB_ASSIGN_OR_RETURN(ReplicaLocation loc, Allocate(id, size));
  EncodeReplicaLocation(response, loc);
  return Status::OK();
}

Status AStoreServer::HandleRelease(Slice request, std::string* response) {
  node_->cpu()->Access(0, options_.control_op_cost);
  response->clear();
  Slice raw;
  if (!GetFixedBytes(&request, 8, &raw)) {
    return Status::InvalidArgument("release request");
  }
  return Release(DecodeFixed64(raw.data()));
}

Status AStoreServer::HandlePull(Slice request, std::string* response) {
  // Rebuild support: copy a segment's bytes from a healthy peer into our
  // local allocation. Request: segment_id, size, source node, source base.
  Slice raw, src_node;
  if (!GetFixedBytes(&request, 8, &raw)) {
    return Status::InvalidArgument("pull request");
  }
  SegmentId id = DecodeFixed64(raw.data());
  if (!GetFixedBytes(&request, 8, &raw)) {
    return Status::InvalidArgument("pull request");
  }
  uint64_t size = DecodeFixed64(raw.data());
  if (!GetLengthPrefixedSlice(&request, &src_node)) {
    return Status::InvalidArgument("pull request");
  }
  if (!GetFixedBytes(&request, 8, &raw)) {
    return Status::InvalidArgument("pull request");
  }
  uint64_t src_base = DecodeFixed64(raw.data());
  Slice region_raw;
  if (!GetFixedBytes(&request, 4, &region_raw)) {
    return Status::InvalidArgument("pull request");
  }
  net::MemoryRegionId src_region{DecodeFixed32(region_raw.data())};

  VEDB_ASSIGN_OR_RETURN(ReplicaLocation loc, Allocate(id, size));

  // Pull the bytes over RDMA from the source replica, then persist locally.
  std::string buf(size, '\0');
  VEDB_RETURN_IF_ERROR(
      fabric_->Read(node_, src_region, src_base, size, buf.data()));
  VEDB_RETURN_IF_ERROR(pmem_->WriteLocal(loc.base_offset, Slice(buf)));
  node_->storage()->Access(size);  // local PMem write cost

  // The pull response tells the CM this replica is durable: check it.
  VEDB_RETURN_IF_ERROR(
      pmem_->CheckPersisted(loc.base_offset, size, "astore.server.pull_ack"));

  EncodeReplicaLocation(response, loc);
  return Status::OK();
}

}  // namespace vedb::astore
