// Grouped memory limiter: bounds in-flight bytes per group (tenant) inside
// one shared pool, in the style of ydb's grouped memory service. Each group
// has a hard cap; the pool has a total. Acquire() blocks through the
// virtual clock until both fit, keeping per-group FIFO order (a large
// request cannot be starved by a stream of small ones from its own group),
// while groups never queue behind each other's caps — only behind the
// shared total. Requests that could never fit fail fast with
// InvalidArgument instead of parking forever.

#ifndef VEDB_QOS_MEMORY_LIMITER_H_
#define VEDB_QOS_MEMORY_LIMITER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "sim/clock.h"

namespace vedb::qos {

class GroupedMemoryLimiter {
 public:
  struct Options {
    /// Shared pool bounding the sum of all groups' in-flight bytes.
    uint64_t total_bytes = 8 * kMiB;
  };

  GroupedMemoryLimiter(sim::VirtualClock* clock, const Options& options)
      : options_(options), cond_(clock, "qos.memory") {}

  /// Declares a group with its in-flight cap (0 = bounded only by the
  /// shared total). Re-registration updates the cap.
  void RegisterGroup(const std::string& group, uint64_t max_inflight_bytes);

  /// Blocks (virtual time) until `bytes` fit under both the group cap and
  /// the shared total, then charges them. FIFO per group. Fails fast with
  /// InvalidArgument for unknown groups and for requests larger than either
  /// limit. Must not be called with any lock held ordered after
  /// "qos.memory" (the wait parks through the virtual clock).
  Status Acquire(const std::string& group, uint64_t bytes);

  /// Returns `bytes` to the pool and wakes waiters.
  void Release(const std::string& group, uint64_t bytes);

  uint64_t InflightBytes(const std::string& group) const;
  uint64_t QueuedBytes(const std::string& group) const;
  uint64_t TotalInflightBytes() const;

 private:
  struct Group {
    uint64_t cap = 0;  // 0 = no per-group cap
    uint64_t inflight = 0;
    uint64_t queued = 0;               // bytes of parked Acquires
    std::deque<uint64_t> wait_queue;   // Acquire seqs, FIFO
  };

  bool FitsLocked(const Group& g, uint64_t bytes) const REQUIRES(mu_) {
    return (g.cap == 0 || g.inflight + bytes <= g.cap) &&
           total_inflight_ + bytes <= options_.total_bytes;
  }

  const Options options_;
  mutable vedb::Mutex mu_{"qos.memory"};
  sim::VirtualCondition cond_;
  std::map<std::string, Group> groups_ GUARDED_BY(mu_);
  uint64_t total_inflight_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
};

}  // namespace vedb::qos

#endif  // VEDB_QOS_MEMORY_LIMITER_H_
