// Per-tenant admission control for the AStore client path: a deterministic
// token-bucket rate limiter (bytes/sec with burst credit) in front of a
// grouped memory limiter (in-flight append bytes per tenant within a shared
// pool). Admit() charges both and hands back a move-only Ticket that
// returns the in-flight bytes on destruction, so admission brackets exactly
// the operation's lifetime.
//
// Both waits go through the virtual clock with no lock held, which is why
// the declared order contracts place every qos.* lock class strictly before
// astore.* handle locks: admitting while holding an astore lock would stall
// the stack behind a throttled tenant.
//
// Exported state (per tenant, see obs Snapshot schema):
//   qos.throttle{tenant}        rate-limiter delays (counter)
//   qos.throttle_wait_ns{tenant} delay distribution (histogram)
//   qos.admitted_bytes{tenant}  bytes past admission (counter)
//   qos.rejected{tenant}        fail-fast rejections (counter)
//   qos.tokens{tenant}          bucket level after last admit (gauge)
//   qos.inflight_bytes{tenant}  bytes currently in flight (gauge)
//   qos.queued_bytes{tenant}    bytes parked on the memory limiter (gauge)

#ifndef VEDB_QOS_ADMISSION_H_
#define VEDB_QOS_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "qos/memory_limiter.h"
#include "qos/token_bucket.h"
#include "sim/clock.h"

namespace vedb::qos {

/// Per-tenant limits. Zeroes disable the respective limiter.
struct TenantConfig {
  /// Sustained append/read bandwidth; 0 = unlimited.
  uint64_t rate_bytes_per_sec = 0;
  /// Instantaneous burst allowance for the token bucket.
  uint64_t burst_bytes = 256 * kKiB;
  /// Cap on this tenant's in-flight bytes; 0 = bounded only by the shared
  /// pool.
  uint64_t max_inflight_bytes = 1 * kMiB;
};

class AdmissionController;

/// Move-only receipt for admitted bytes; releases them on destruction.
class Ticket {
 public:
  Ticket() = default;
  Ticket(Ticket&& o) noexcept { *this = std::move(o); }
  Ticket& operator=(Ticket&& o) noexcept {
    Release();
    controller_ = o.controller_;
    tenant_ = o.tenant_;
    bytes_ = o.bytes_;
    o.controller_ = nullptr;
    return *this;
  }
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  ~Ticket() { Release(); }

  uint64_t bytes() const { return bytes_; }
  bool active() const { return controller_ != nullptr; }

  /// Returns the in-flight bytes early (idempotent).
  void Release();

 private:
  friend class AdmissionController;
  Ticket(AdmissionController* controller, const std::string* tenant,
         uint64_t bytes)
      : controller_(controller), tenant_(tenant), bytes_(bytes) {}

  AdmissionController* controller_ = nullptr;
  const std::string* tenant_ = nullptr;  // stable: owned by the controller
  uint64_t bytes_ = 0;
};

class AdmissionController {
 public:
  struct Options {
    /// Shared in-flight pool across all tenants.
    uint64_t total_inflight_bytes = 8 * kMiB;
  };

  explicit AdmissionController(sim::VirtualClock* clock)
      : AdmissionController(clock, Options()) {}
  AdmissionController(sim::VirtualClock* clock, const Options& options);

  /// Declares a tenant. Must be called before Admit() for that tenant;
  /// re-registration is AlreadyExists (limits are immutable once handed to
  /// running clients).
  Status RegisterTenant(const std::string& tenant, const TenantConfig& config);

  /// Admits `bytes` for `tenant`: waits out the token bucket (counting a
  /// throttle event when it delays), then reserves in-flight memory. Blocks
  /// only through the virtual clock, with no lock held across either wait.
  /// The Ticket releases the memory reservation when destroyed.
  Result<Ticket> Admit(const std::string& tenant, uint64_t bytes);

  /// Test/introspection helpers.
  uint64_t ThrottleCount(const std::string& tenant) const;
  uint64_t InflightBytes(const std::string& tenant) const;

 private:
  friend class Ticket;

  struct Tenant {
    explicit Tenant(sim::VirtualClock* clock, std::string tenant_name,
                    const TenantConfig& config);
    const std::string name;
    TokenBucket bucket;
    obs::Counter* throttles;
    obs::Counter* admitted_bytes;
    obs::Counter* rejected;
    obs::HistogramMetric* throttle_wait_ns;
    obs::Gauge* tokens_gauge;
    obs::Gauge* inflight_gauge;
    obs::Gauge* queued_gauge;
  };

  void ReleaseBytes(const std::string& tenant, uint64_t bytes);
  Tenant* FindTenant(const std::string& tenant) const;

  sim::VirtualClock* clock_;
  GroupedMemoryLimiter memory_;

  mutable vedb::Mutex mu_{"qos.admission"};
  std::map<std::string, std::unique_ptr<Tenant>> tenants_ GUARDED_BY(mu_);
};

}  // namespace vedb::qos

#endif  // VEDB_QOS_ADMISSION_H_
