#include "qos/admission.h"

#include "sim/lock_order.h"

namespace vedb::qos {

void Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseBytes(*tenant_, bytes_);
  controller_ = nullptr;
}

AdmissionController::Tenant::Tenant(sim::VirtualClock* clock,
                                    std::string tenant_name,
                                    const TenantConfig& config)
    : name(std::move(tenant_name)),
      bucket(clock, TokenBucket::Options{config.rate_bytes_per_sec,
                                         config.burst_bytes}) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::LabelSet labels = {{"tenant", name}};
  throttles = reg.GetCounter("qos.throttle", labels);
  admitted_bytes = reg.GetCounter("qos.admitted_bytes", labels);
  rejected = reg.GetCounter("qos.rejected", labels);
  throttle_wait_ns = reg.GetHistogram("qos.throttle_wait_ns", labels);
  tokens_gauge = reg.GetGauge("qos.tokens", labels);
  inflight_gauge = reg.GetGauge("qos.inflight_bytes", labels);
  queued_gauge = reg.GetGauge("qos.queued_bytes", labels);
}

AdmissionController::AdmissionController(sim::VirtualClock* clock,
                                         const Options& options)
    : clock_(clock),
      memory_(clock, GroupedMemoryLimiter::Options{
                         options.total_inflight_bytes}) {
  // One-way order contracts (see sim/lock_order.h): admission lookups may
  // consult the bucket/limiter, and every qos wait must happen before any
  // astore lock is taken — an Admit() under an astore handle or ring lock
  // would stall unrelated tenants behind a throttled one. The contract
  // edges make the lock-order gate fail the first run that tries.
  sim::LockOrderGraph::RegisterContract("qos.admission", "qos.bucket");
  sim::LockOrderGraph::RegisterContract("qos.admission", "qos.memory");
  sim::LockOrderGraph::RegisterContract("qos.bucket", "astore.handle");
  sim::LockOrderGraph::RegisterContract("qos.memory", "astore.handle");
  sim::LockOrderGraph::RegisterContract("qos.memory", "astore.ring");
}

Status AdmissionController::RegisterTenant(const std::string& tenant,
                                           const TenantConfig& config) {
  vedb::MutexLock lk(&mu_);
  if (tenants_.count(tenant) != 0) {
    return Status::AlreadyExists("tenant already registered: " + tenant);
  }
  tenants_.emplace(tenant,
                   std::make_unique<Tenant>(clock_, tenant, config));
  memory_.RegisterGroup(tenant, config.max_inflight_bytes);
  return Status::OK();
}

AdmissionController::Tenant* AdmissionController::FindTenant(
    const std::string& tenant) const {
  vedb::MutexLock lk(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Result<Ticket> AdmissionController::Admit(const std::string& tenant,
                                          uint64_t bytes) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return Status::InvalidArgument("unknown tenant: " + tenant);
  }
  // Rate limit first: the grant is recorded even when delayed, so
  // concurrent producers of one tenant line up behind each other's debt
  // deterministically.
  const Timestamp now = clock_->Now();
  const Timestamp ready = t->bucket.Acquire(bytes);
  if (ready > now) {
    t->throttles->Add(1);
    t->throttle_wait_ns->Observe(ready - now);
    clock_->SleepUntil(ready);
  }
  // Then bound in-flight memory; parks through the virtual clock when the
  // tenant (or the shared pool) is saturated.
  t->queued_gauge->Add(static_cast<int64_t>(bytes));
  const Status mem = memory_.Acquire(tenant, bytes);
  t->queued_gauge->Add(-static_cast<int64_t>(bytes));
  if (!mem.ok()) {
    t->rejected->Add(1);
    return mem;
  }
  t->admitted_bytes->Add(bytes);
  t->inflight_gauge->Add(static_cast<int64_t>(bytes));
  t->tokens_gauge->Set(static_cast<int64_t>(t->bucket.TokensAvailable()));
  return Ticket(this, &t->name, bytes);
}

void AdmissionController::ReleaseBytes(const std::string& tenant,
                                       uint64_t bytes) {
  memory_.Release(tenant, bytes);
  Tenant* t = FindTenant(tenant);
  if (t != nullptr) t->inflight_gauge->Add(-static_cast<int64_t>(bytes));
}

uint64_t AdmissionController::ThrottleCount(const std::string& tenant) const {
  Tenant* t = FindTenant(tenant);
  return t == nullptr ? 0 : t->throttles->value();
}

uint64_t AdmissionController::InflightBytes(const std::string& tenant) const {
  return memory_.InflightBytes(tenant);
}

}  // namespace vedb::qos
