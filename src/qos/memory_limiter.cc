#include "qos/memory_limiter.h"

#include <algorithm>

namespace vedb::qos {

void GroupedMemoryLimiter::RegisterGroup(const std::string& group,
                                         uint64_t max_inflight_bytes) {
  vedb::MutexLock lk(&mu_);
  groups_[group].cap = max_inflight_bytes;
}

Status GroupedMemoryLimiter::Acquire(const std::string& group,
                                     uint64_t bytes) {
  vedb::MutexLock lk(&mu_);
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return Status::InvalidArgument("unknown memory group: " + group);
  }
  Group& g = it->second;
  if ((g.cap != 0 && bytes > g.cap) || bytes > options_.total_bytes) {
    // Would park forever even with the pool drained.
    return Status::InvalidArgument("request exceeds memory limit");
  }
  if (g.wait_queue.empty() && FitsLocked(g, bytes)) {
    g.inflight += bytes;
    total_inflight_ += bytes;
    return Status::OK();
  }
  // Park in per-group FIFO order: the head of the queue is granted first,
  // so a large request is not starved by smaller latecomers of its own
  // group. Other groups only contend for the shared total.
  const uint64_t seq = next_seq_++;
  g.wait_queue.push_back(seq);
  g.queued += bytes;
  cond_.Wait(&mu_, [&] {
    return g.wait_queue.front() == seq &&
           (g.cap == 0 || g.inflight + bytes <= g.cap) &&
           total_inflight_ + bytes <= options_.total_bytes;
  });
  g.wait_queue.pop_front();
  g.queued -= bytes;
  g.inflight += bytes;
  total_inflight_ += bytes;
  // The next queued waiter (this group or another) may fit now that the
  // queue head moved.
  cond_.NotifyAll();
  return Status::OK();
}

void GroupedMemoryLimiter::Release(const std::string& group, uint64_t bytes) {
  {
    vedb::MutexLock lk(&mu_);
    auto it = groups_.find(group);
    if (it == groups_.end()) return;
    it->second.inflight -= std::min(it->second.inflight, bytes);
    total_inflight_ -= std::min(total_inflight_, bytes);
  }
  cond_.NotifyAll();
}

uint64_t GroupedMemoryLimiter::InflightBytes(const std::string& group) const {
  vedb::MutexLock lk(&mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.inflight;
}

uint64_t GroupedMemoryLimiter::QueuedBytes(const std::string& group) const {
  vedb::MutexLock lk(&mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.queued;
}

uint64_t GroupedMemoryLimiter::TotalInflightBytes() const {
  vedb::MutexLock lk(&mu_);
  return total_inflight_;
}

}  // namespace vedb::qos
