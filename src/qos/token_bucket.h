// Deterministic token-bucket rate limiter on the virtual clock.
//
// The bucket is a GCRA-style meter: instead of a periodically refilled
// counter it tracks a single "theoretical arrival time" (the virtual instant
// at which all previously granted bytes are amortized at the configured
// rate). Acquire() never rejects — it returns the virtual time at which the
// grant conforms, and the caller sleeps until then. Because the state is one
// integer advanced by integer arithmetic on virtual timestamps, two seeded
// runs make byte-identical throttling decisions; there is no background
// refill actor and no floating-point drift.
//
// A request larger than the burst is legal: it simply pays for the excess
// with a proportionally later ready time (debt model), so oversized but
// bounded appends degrade to their fair rate instead of deadlocking.

#ifndef VEDB_QOS_TOKEN_BUCKET_H_
#define VEDB_QOS_TOKEN_BUCKET_H_

#include <cstdint>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "sim/clock.h"

namespace vedb::qos {

class TokenBucket {
 public:
  struct Options {
    /// Sustained rate. 0 means unlimited (Acquire always grants now).
    uint64_t rate_bytes_per_sec = 0;
    /// Tokens that may be consumed instantaneously from a full bucket.
    uint64_t burst_bytes = 256 * kKiB;
  };

  TokenBucket(sim::VirtualClock* clock, const Options& options)
      : clock_(clock), options_(options) {}

  /// Grants `bytes` tokens and returns the virtual time at which the grant
  /// conforms to the configured rate: `now` when the bucket covers it, a
  /// later instant otherwise. The caller must SleepUntil() the returned
  /// time before proceeding; the debt is recorded either way, so callers
  /// that race Acquire() serialize deterministically through the clock.
  Timestamp Acquire(uint64_t bytes);

  /// Tokens currently available (burst minus outstanding debt), for the
  /// qos.tokens gauge. Never negative; a bucket deep in debt reads 0.
  uint64_t TokensAvailable() const;

 private:
  Duration CostNs(uint64_t bytes) const {
    return bytes * kSecond / options_.rate_bytes_per_sec;
  }

  sim::VirtualClock* clock_;
  const Options options_;

  mutable vedb::Mutex mu_{"qos.bucket"};
  /// Virtual time at which every granted byte is amortized at `rate`. The
  /// bucket may run up to burst_ns ahead of now (burst credit); a grant
  /// whose tat exceeds now + burst_ns must wait for the overshoot.
  Timestamp tat_ GUARDED_BY(mu_) = 0;
};

}  // namespace vedb::qos

#endif  // VEDB_QOS_TOKEN_BUCKET_H_
