#include "qos/token_bucket.h"

#include <algorithm>

namespace vedb::qos {

Timestamp TokenBucket::Acquire(uint64_t bytes) {
  const Timestamp now = clock_->Now();
  if (options_.rate_bytes_per_sec == 0) return now;
  const Duration burst_ns = CostNs(options_.burst_bytes);
  vedb::MutexLock lk(&mu_);
  // An idle bucket's tat decays toward now (it never banks more credit
  // than the burst allows, because the grant below is measured against
  // now - burst_ns, not against tat alone).
  const Timestamp base = std::max(tat_, now > burst_ns ? now - burst_ns : 0);
  tat_ = base + CostNs(bytes);
  // Conforming while tat stays within one burst of now; beyond that the
  // caller owes the overshoot.
  return tat_ > now + burst_ns ? tat_ - burst_ns : now;
}

uint64_t TokenBucket::TokensAvailable() const {
  if (options_.rate_bytes_per_sec == 0) return options_.burst_bytes;
  const Timestamp now = clock_->Now();
  vedb::MutexLock lk(&mu_);
  if (tat_ <= now) return options_.burst_bytes;  // fully recovered
  const uint64_t debt =
      (tat_ - now) * options_.rate_bytes_per_sec / kSecond;
  return debt >= options_.burst_bytes ? 0 : options_.burst_bytes - debt;
}

}  // namespace vedb::qos
