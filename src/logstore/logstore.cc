#include "logstore/logstore.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace vedb::logstore {

namespace {
void InitLogMetrics(const char* backend, obs::Counter** appends,
                    obs::HistogramMetric** append_ns, obs::Counter** flushes,
                    obs::Counter** flush_bytes) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  *appends = reg.GetCounter("logstore.appends", {{"backend", backend}});
  *append_ns = reg.GetHistogram("logstore.append_ns", {{"backend", backend}});
  *flushes = reg.GetCounter("logstore.flushes", {{"backend", backend}});
  *flush_bytes =
      reg.GetCounter("logstore.flush_bytes", {{"backend", backend}});
}
}  // namespace

void BlobLogStore::InitMetrics(const char* backend) {
  InitLogMetrics(backend, &appends_, &append_ns_, &flushes_, &flush_bytes_);
}

void AStoreLogStore::InitMetrics(const char* backend) {
  InitLogMetrics(backend, &appends_, &append_ns_, &flushes_, &flush_bytes_);
}

void DurabilityWatermark::MarkDurable(uint64_t first, uint64_t last) {
  bool advanced = false;
  {
    vedb::MutexLock lk(&mu_);
    completed_.insert({first, last});
    // Fold any now-contiguous prefix into the watermark.
    while (!completed_.empty()) {
      auto it = completed_.begin();
      if (it->first != durable_ + 1) break;
      durable_ = it->second;
      completed_.erase(it);
      advanced = true;
    }
  }
  if (advanced) cond_.NotifyAll();
}

void DurabilityWatermark::WaitDurable(uint64_t lsn) {
  vedb::MutexLock lk(&mu_);
  cond_.Wait(&mu_, [&] { return durable_ >= lsn; });
}


Status GroupCommitter::Submit(Item item, Duration wait_timeout) {
  const uint64_t first = item.first_lsn;
  const uint64_t last = item.last_lsn;
  const Timestamp deadline =
      wait_timeout == 0 ? 0 : clock_->Now() + wait_timeout;
  vedb::MutexLock lk(&mu_);
  pending_.push_back(std::move(item));
  while (true) {
    auto failed = failed_.find(first);
    if (failed != failed_.end()) {
      Status s = failed->second.second;
      failed_.erase(failed);
      return s;
    }
    if (watermark_->durable_lsn() >= last) return Status::OK();
    if (deadline != 0 && clock_->Now() >= deadline) {
      // Giving up, not cancelling: the item stays queued and the next
      // leader flushes it — outcome unknown to this caller. Item::pin is
      // what keeps the abandoned payload bytes valid through that flush.
      return Status::TimedOut("group commit wait timed out");
    }
    if (!flushing_ && !pending_.empty()) {
      // Become the leader: flush everything queued so far as one write.
      flushing_ = true;
      std::vector<Item> group;
      group.swap(pending_);
      lk.Unlock();

      Status s = flush_(group);
      // Resolve the group: record failures (before the watermark makes the
      // range look durable), fire downstream cancellations, then advance
      // the watermark so committers and followers wake.
      if (!s.ok()) {
        lk.Lock();
        for (const Item& g : group) {
          failed_[g.first_lsn] = {g.last_lsn, s};
        }
        lk.Unlock();
        for (const Item& g : group) {
          if (g.on_failed) g.on_failed(g.first_lsn, g.last_lsn);
        }
      }
      watermark_->MarkDurable(group.front().first_lsn,
                              group.back().last_lsn);
      lk.Lock();
      flushing_ = false;
      lk.Unlock();
      cond_.NotifyAll();
      lk.Lock();
      continue;
    }
    // Follower: wait for the in-flight flush to finish, then re-check.
    if (deadline == 0) {
      cond_.Wait(&mu_, [&] { return !flushing_; });
    } else if (!cond_.WaitUntil(&mu_, deadline, [&] { return !flushing_; })) {
      return Status::TimedOut("group commit wait timed out");
    }
  }
}

std::string EncodeBatchPayload(const std::vector<Slice>& payloads) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(payloads.size()));
  for (const Slice& p : payloads) {
    PutLengthPrefixedSlice(&out, p);
  }
  return out;
}

std::string EncodeBatchPayload(const std::vector<std::string>& payloads) {
  std::vector<Slice> views;
  views.reserve(payloads.size());
  for (const std::string& p : payloads) views.emplace_back(p);
  return EncodeBatchPayload(views);
}

bool DecodeBatchPayload(Slice in, uint64_t first_lsn,
                        std::vector<astore::LogRecord>* out) {
  uint32_t count = 0;
  if (!GetVarint32(&in, &count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    Slice payload;
    if (!GetLengthPrefixedSlice(&in, &payload)) return false;
    out->push_back(astore::LogRecord{first_lsn + i, payload.ToString()});
  }
  return true;
}

// ---------------- BlobLogStore ----------------

Result<std::unique_ptr<BlobLogStore>> BlobLogStore::Create(
    sim::SimEnvironment* env, blob::BlobStoreCluster* cluster,
    sim::SimNode* client, const Options& options) {
  VEDB_ASSIGN_OR_RETURN(
      std::unique_ptr<blob::BlobGroup> group,
      blob::BlobGroup::Create(cluster, client, options.group));
  return std::unique_ptr<BlobLogStore>(
      new BlobLogStore(env, client, options, std::move(group)));
}

Result<AppendResult> BlobLogStore::AppendBatch(
    const std::vector<std::string>& payloads, const AppendHooks* hooks) {
  if (payloads.empty()) return Status::InvalidArgument("empty batch");

  const Timestamp begin = env_->clock()->Now();
  obs::SpanScope span(obs::Tracer::Global(), "logstore.append");
  span.AddTag("backend", "ssd");

  GroupCommitter::Item item;
  {
    vedb::MutexLock lk(&mu_);
    item.first_lsn = next_lsn_;
    next_lsn_ += payloads.size();
    item.last_lsn = next_lsn_ - 1;
    if (hooks != nullptr && hooks->on_assigned) {
      hooks->on_assigned(item.first_lsn, item.last_lsn);
    }
  }
  // One copy, into the pin: the committer and the flush path then work on
  // Slices over these bytes, which outlive any timed-out waiter.
  auto pinned = std::make_shared<const std::vector<std::string>>(payloads);
  item.payloads.reserve(pinned->size());
  for (const std::string& p : *pinned) item.payloads.emplace_back(p);
  item.pin = std::move(pinned);
  if (hooks != nullptr) item.on_failed = hooks->on_failed;
  const AppendResult result{item.first_lsn, item.last_lsn};
  VEDB_RETURN_IF_ERROR(committer_.Submit(std::move(item)));
  appends_->Add(1);
  append_ns_->Observe(env_->clock()->Now() - begin);
  return result;
}

Status BlobLogStore::FlushGroup(const std::vector<GroupCommitter::Item>& items) {
  // One pass through the async submission path per physical flush: the
  // dispatcher burns CPU for the submit and the request waits its turn in
  // the scheduling queue — "CPU resources are required to schedule every
  // I/O request..." (Section V).
  Duration sched_delay;
  {
    vedb::MutexLock lk(&mu_);
    sched_delay = static_cast<Duration>(
        rng_.Exponential(static_cast<double>(options_.sched_delay_mean)));
  }
  client_->cpu()->Access(0, options_.submit_overhead);
  env_->clock()->SleepFor(sched_delay);

  // Frame the whole group as one record keyed by its first LSN. The items'
  // payloads are borrowed views (pinned by Item::pin), never re-copied.
  std::vector<Slice> flat;
  for (const auto& item : items) {
    for (const Slice& p : item.payloads) flat.push_back(p);
  }
  const uint64_t first = items.front().first_lsn;
  const std::string body = EncodeBatchPayload(flat);
  std::string frame;
  PutFixed32(&frame, static_cast<uint32_t>(body.size()));
  PutFixed64(&frame, first);
  frame += body;
  PutFixed32(&frame, MaskCrc(Crc32c(0, frame.data() + 4, 8 + body.size())));
  flushes_->Add(1);
  flush_bytes_->Add(frame.size());
  return group_->Append(Slice(frame), nullptr);
}

Result<std::vector<astore::LogRecord>> BlobLogStore::ReadFrom(
    uint64_t from_lsn) {
  // Walk the chunk stream: every append starts at a chunk boundary and
  // occupies whole chunks.
  std::vector<astore::LogRecord> records;
  const uint64_t io = options_.group.io_size;
  const uint64_t end = group_->length();
  uint64_t offset = 0;
  while (offset < end) {
    std::string head;
    VEDB_RETURN_IF_ERROR(group_->Read(offset, 12, &head));
    const uint32_t body_len = DecodeFixed32(head.data());
    const uint64_t first = DecodeFixed64(head.data() + 4);
    const uint64_t frame_len = 16 + body_len;
    if (body_len == 0 || offset + frame_len > end) break;  // tail padding
    std::string frame;
    VEDB_RETURN_IF_ERROR(group_->Read(offset, frame_len, &frame));
    const uint32_t stored = UnmaskCrc(DecodeFixed32(frame.data() + 12 + body_len));
    if (stored != Crc32c(0, frame.data() + 4, 8 + body_len)) break;
    std::vector<astore::LogRecord> batch;
    if (!DecodeBatchPayload(Slice(frame.data() + 12, body_len), first,
                            &batch)) {
      break;
    }
    for (auto& rec : batch) {
      if (rec.lsn >= from_lsn) records.push_back(std::move(rec));
    }
    offset += (frame_len + io - 1) / io * io;  // next chunk boundary
  }
  std::sort(records.begin(), records.end(),
            [](const astore::LogRecord& a, const astore::LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return records;
}

uint64_t BlobLogStore::NextLsn() const {
  vedb::MutexLock lk(&mu_);
  return next_lsn_;
}

// ---------------- AStoreLogStore ----------------

Result<std::unique_ptr<AStoreLogStore>> AStoreLogStore::Create(
    sim::SimEnvironment* env, astore::AStoreClient* client,
    const Options& options) {
  VEDB_ASSIGN_OR_RETURN(std::unique_ptr<astore::SegmentRing> ring,
                        astore::SegmentRing::Create(client, options.ring));
  return std::unique_ptr<AStoreLogStore>(new AStoreLogStore(
      env, client, options, std::move(ring), /*next_lsn=*/1));
}

Result<std::unique_ptr<AStoreLogStore>> AStoreLogStore::Recover(
    sim::SimEnvironment* env, astore::AStoreClient* client,
    const std::vector<astore::SegmentId>& segments, uint64_t from_lsn,
    const Options& options, std::vector<astore::LogRecord>* recovered_out) {
  VEDB_ASSIGN_OR_RETURN(
      astore::SegmentRing::Recovered rec,
      astore::SegmentRing::Recover(client, segments, 0, options.ring));

  // Ring records are batch frames keyed by their first LSN; unpack them and
  // determine the true next LSN.
  uint64_t next_lsn = 1;
  for (const auto& ring_rec : rec.records) {
    std::vector<astore::LogRecord> batch;
    if (!DecodeBatchPayload(Slice(ring_rec.payload), ring_rec.lsn, &batch)) {
      return Status::Corruption("bad batch frame in recovered log");
    }
    for (auto& r : batch) {
      next_lsn = std::max(next_lsn, r.lsn + 1);
      if (r.lsn >= from_lsn && recovered_out != nullptr) {
        recovered_out->push_back(std::move(r));
      }
    }
  }

  // Resume on a fresh ring (the old segments stay readable until deleted;
  // production would re-attach in place — a fresh ring keeps the recovered
  // ring immutable, which is simpler and equally correct).
  VEDB_ASSIGN_OR_RETURN(std::unique_ptr<astore::SegmentRing> ring,
                        astore::SegmentRing::Create(client, options.ring));
  return std::unique_ptr<AStoreLogStore>(
      new AStoreLogStore(env, client, options, std::move(ring), next_lsn));
}

Result<AppendResult> AStoreLogStore::AppendBatch(
    const std::vector<std::string>& payloads, const AppendHooks* hooks) {
  if (payloads.empty()) return Status::InvalidArgument("empty batch");

  const Timestamp begin = env_->clock()->Now();
  obs::SpanScope span(obs::Tracer::Global(), "logstore.append");
  span.AddTag("backend", "pmem");

  GroupCommitter::Item item;
  {
    vedb::MutexLock lk(&mu_);
    item.first_lsn = next_lsn_;
    next_lsn_ += payloads.size();
    item.last_lsn = next_lsn_ - 1;
    if (hooks != nullptr && hooks->on_assigned) {
      hooks->on_assigned(item.first_lsn, item.last_lsn);
    }
  }
  // One copy, into the pin: the committer and the flush path then work on
  // Slices over these bytes, which outlive any timed-out waiter.
  auto pinned = std::make_shared<const std::vector<std::string>>(payloads);
  item.payloads.reserve(pinned->size());
  for (const std::string& p : *pinned) item.payloads.emplace_back(p);
  item.pin = std::move(pinned);
  if (hooks != nullptr) item.on_failed = hooks->on_failed;
  const AppendResult result{item.first_lsn, item.last_lsn};
  VEDB_RETURN_IF_ERROR(committer_.Submit(std::move(item)));
  appends_->Add(1);
  append_ns_->Observe(env_->clock()->Now() - begin);
  return result;
}

Status AStoreLogStore::FlushGroup(
    const std::vector<GroupCommitter::Item>& items) {
  std::vector<Slice> flat;
  for (const auto& item : items) {
    for (const Slice& p : item.payloads) flat.push_back(p);
  }
  const uint64_t first = items.front().first_lsn;
  const std::string body = EncodeBatchPayload(flat);
  flushes_->Add(1);
  flush_bytes_->Add(body.size());
  // Flushes are serialized by the single group-commit leader, so ring
  // placement naturally follows LSN order. AppendRecord owns the whole
  // reserve/commit/replaced-segment dance — which now rides the client's
  // doorbell coalescer (SubmitReserved/WaitCommit): while this leader
  // parks on its completion token, independent producers on the same
  // client (topics, other rings) join the same doorbell.
  return ring_->AppendRecord(first, Slice(body));
}

Result<std::vector<astore::LogRecord>> AStoreLogStore::ReadFrom(
    uint64_t from_lsn) {
  VEDB_ASSIGN_OR_RETURN(
      astore::SegmentRing::Recovered rec,
      astore::SegmentRing::Recover(client_, ring_->segment_ids(), 0,
                                   options_.ring));
  std::vector<astore::LogRecord> records;
  for (const auto& ring_rec : rec.records) {
    std::vector<astore::LogRecord> batch;
    if (!DecodeBatchPayload(Slice(ring_rec.payload), ring_rec.lsn, &batch)) {
      return Status::Corruption("bad batch frame");
    }
    for (auto& r : batch) {
      if (r.lsn >= from_lsn) records.push_back(std::move(r));
    }
  }
  return records;
}

uint64_t AStoreLogStore::NextLsn() const {
  vedb::MutexLock lk(&mu_);
  return next_lsn_;
}

}  // namespace vedb::logstore
