// LogStore: the REDO-log half of veDB's storage layer, behind one interface
// with two backends:
//  * BlobLogStore — the original design (Section III): BlobGroups over the
//    SSD blob service, with the async submission path whose scheduling
//    overhead causes the latency and jitter the paper complains about.
//  * AStoreLogStore — the PMem design (Section V): a SegmentRing over
//    AStore written with chained one-sided RDMA, run-to-completion.
//
// A commit appends a batch of REDO payloads; the batch is assigned a dense
// range of LSNs and the call returns only when the whole prefix of the log
// up to the batch's last LSN is durable (group-commit watermark).

#ifndef VEDB_LOGSTORE_LOGSTORE_H_
#define VEDB_LOGSTORE_LOGSTORE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "astore/segment_ring.h"
#include "blob/blob_store.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "sim/env.h"

namespace vedb::logstore {

/// LSN range assigned to an appended batch (dense, inclusive).
struct AppendResult {
  uint64_t first_lsn = 0;
  uint64_t last_lsn = 0;
};

/// Callbacks letting callers observe LSN assignment synchronously.
struct AppendHooks {
  /// Invoked under the LSN-assignment lock, so invocations across batches
  /// happen in LSN order. Must be cheap and must not block on the clock.
  /// The redo shipper uses this to enqueue records in LSN order.
  std::function<void(uint64_t first, uint64_t last)> on_assigned;
  /// Invoked when the batch's log write failed, before its LSN range is
  /// resolved in the durability watermark (so the caller can cancel any
  /// downstream work keyed on those LSNs).
  std::function<void(uint64_t first, uint64_t last)> on_failed;
};

class LogStore {
 public:
  virtual ~LogStore() = default;

  /// Appends `payloads` as one physical log write. Returns when every
  /// record with lsn <= result.last_lsn is durable. Thread safe; concurrent
  /// batches overlap their I/O and are fenced by the durability watermark.
  virtual Result<AppendResult> AppendBatch(
      const std::vector<std::string>& payloads,
      const AppendHooks* hooks = nullptr) = 0;

  /// Every record with lsn <= this value has resolved (durable or failed).
  virtual uint64_t DurableLsn() const = 0;

  /// All durable records with lsn >= `from_lsn`, in order (recovery path).
  virtual Result<std::vector<astore::LogRecord>> ReadFrom(
      uint64_t from_lsn) = 0;

  /// The LSN the next record will receive.
  virtual uint64_t NextLsn() const = 0;

  /// Records with lsn < `lsn` may be garbage collected (they are applied in
  /// PageStore). Advisory for ring/blob space reuse.
  virtual void Truncate(uint64_t lsn) = 0;
};

class DurabilityWatermark;

/// Leader/follower group commit: concurrent AppendBatch calls coalesce into
/// one physical log write (veDB's global log buffer behaviour). At most one
/// flush is in flight; the first committer to find the pipeline idle
/// becomes the leader and flushes everything queued, so log-device
/// stragglers never convoy independent commits and throughput scales with
/// batch size rather than 1/latency.
class GroupCommitter {
 public:
  struct Item {
    uint64_t first_lsn = 0;
    uint64_t last_lsn = 0;
    /// Views of the batch payloads. The committer never copies payload
    /// bytes: the flush reads straight through these Slices.
    std::vector<Slice> payloads;
    /// Keeps `payloads`' backing bytes alive until the item's group
    /// resolves — including after a submitting waiter times out and frees
    /// its own copy (the item may still be queued for a later leader).
    std::shared_ptr<const std::vector<std::string>> pin;
    std::function<void(uint64_t, uint64_t)> on_failed;
  };
  /// Writes one physical record containing `items` (lsn-contiguous,
  /// ascending). Runs on the leader's thread, outside the committer lock.
  using FlushFn = std::function<Status(const std::vector<Item>& items)>;

  GroupCommitter(sim::VirtualClock* clock, DurabilityWatermark* watermark,
                 FlushFn flush)
      : clock_(clock),
        cond_(clock, "group-commit"),
        watermark_(watermark),
        flush_(std::move(flush)) {}

  /// Enqueues the item and blocks until its range is durable (leading a
  /// flush if the pipeline is idle). Returns the flush error if this item's
  /// group failed. With a non-zero `wait_timeout`, gives up after that much
  /// virtual time with TimedOut — the item STAYS queued (outcome unknown)
  /// and is flushed by the next leader; its payload bytes survive via
  /// Item::pin regardless of what the caller frees.
  Status Submit(Item item, Duration wait_timeout = 0);

 private:
  sim::VirtualClock* clock_;
  vedb::Mutex mu_{"logstore.committer"};
  sim::VirtualCondition cond_;
  DurabilityWatermark* watermark_;
  FlushFn flush_;
  bool flushing_ GUARDED_BY(mu_) = false;
  std::vector<Item> pending_ GUARDED_BY(mu_);
  // first_lsn -> (last_lsn, error) for failed groups awaiting pickup.
  std::map<uint64_t, std::pair<uint64_t, Status>> failed_ GUARDED_BY(mu_);
};

/// Tracks the contiguous durability watermark across overlapping appends.
/// Append flows: Reserve() -> do I/O -> MarkDurable() -> WaitDurable().
class DurabilityWatermark {
 public:
  /// `initial` is the already-durable prefix (recovered logs start at their
  /// last recovered LSN, fresh logs at 0).
  explicit DurabilityWatermark(sim::VirtualClock* clock, uint64_t initial = 0)
      : cond_(clock, "log-watermark"), durable_(initial) {}

  /// Marks [first, last] complete and advances the watermark over any
  /// now-contiguous prefix. `next_unassigned` is the current end of the
  /// assigned LSN space.
  void MarkDurable(uint64_t first, uint64_t last);

  /// Blocks until every lsn <= `lsn` is durable.
  void WaitDurable(uint64_t lsn);

  uint64_t durable_lsn() const {
    vedb::MutexLock lk(&mu_);
    return durable_;
  }

 private:
  mutable vedb::Mutex mu_{"logstore.watermark"};
  sim::VirtualCondition cond_;
  // all lsns <= durable_ are durable
  uint64_t durable_ GUARDED_BY(mu_) = 0;
  // disjoint ranges
  std::set<std::pair<uint64_t, uint64_t>> completed_ GUARDED_BY(mu_);
};

/// SSD/BlobGroup-backed baseline.
class BlobLogStore : public LogStore {
 public:
  struct Options {
    blob::BlobGroup::Options group;
    /// Mean of the exponential submission-scheduling delay the async I/O
    /// path adds per append (thread hand-off, queueing) — the cost AStore
    /// eliminates with run-to-completion.
    Duration sched_delay_mean = 330 * kMicrosecond;
    /// Fixed client software cost per append.
    Duration submit_overhead = 25 * kMicrosecond;
  };

  static Result<std::unique_ptr<BlobLogStore>> Create(
      sim::SimEnvironment* env, blob::BlobStoreCluster* cluster,
      sim::SimNode* client, const Options& options);

  Result<AppendResult> AppendBatch(const std::vector<std::string>& payloads,
                                   const AppendHooks* hooks = nullptr) override;
  Result<std::vector<astore::LogRecord>> ReadFrom(uint64_t from_lsn) override;
  uint64_t NextLsn() const override;
  uint64_t DurableLsn() const override { return watermark_.durable_lsn(); }
  void Truncate(uint64_t /*lsn*/) override {}

 private:
  BlobLogStore(sim::SimEnvironment* env, sim::SimNode* client,
               Options options, std::unique_ptr<blob::BlobGroup> group)
      : env_(env),
        client_(client),
        options_(options),
        group_(std::move(group)),
        watermark_(env->clock()),
        committer_(env->clock(), &watermark_,
                   [this](const std::vector<GroupCommitter::Item>& items) {
                     return FlushGroup(items);
                   }),
        rng_(env->NextSeed()) {
    InitMetrics("ssd");
  }

  void InitMetrics(const char* backend);

  Status FlushGroup(const std::vector<GroupCommitter::Item>& items);

  sim::SimEnvironment* env_;
  sim::SimNode* client_;
  Options options_;
  std::unique_ptr<blob::BlobGroup> group_;
  DurabilityWatermark watermark_;
  GroupCommitter committer_;

  mutable vedb::Mutex mu_{"logstore.blob"};
  uint64_t next_lsn_ GUARDED_BY(mu_) = 1;
  Random rng_ GUARDED_BY(mu_);

  // Observability (resolved once at construction; see obs/metrics.h).
  obs::Counter* appends_ = nullptr;
  obs::HistogramMetric* append_ns_ = nullptr;
  obs::Counter* flushes_ = nullptr;
  obs::Counter* flush_bytes_ = nullptr;
};

/// AStore/SegmentRing-backed store (the paper's design).
class AStoreLogStore : public LogStore {
 public:
  struct Options {
    astore::SegmentRing::Options ring;
  };

  static Result<std::unique_ptr<AStoreLogStore>> Create(
      sim::SimEnvironment* env, astore::AStoreClient* client,
      const Options& options);

  /// Re-attaches to an existing log after a DBEngine crash: recovers the
  /// ring contents owned by `client`, returns the records via
  /// `recovered_out`, and resumes appending after the last durable LSN on a
  /// fresh ring.
  static Result<std::unique_ptr<AStoreLogStore>> Recover(
      sim::SimEnvironment* env, astore::AStoreClient* client,
      const std::vector<astore::SegmentId>& segments, uint64_t from_lsn,
      const Options& options,
      std::vector<astore::LogRecord>* recovered_out);

  Result<AppendResult> AppendBatch(const std::vector<std::string>& payloads,
                                   const AppendHooks* hooks = nullptr) override;
  Result<std::vector<astore::LogRecord>> ReadFrom(uint64_t from_lsn) override;
  uint64_t NextLsn() const override;
  uint64_t DurableLsn() const override { return watermark_.durable_lsn(); }
  void Truncate(uint64_t /*lsn*/) override {}

  astore::SegmentRing* ring() { return ring_.get(); }

 private:
  AStoreLogStore(sim::SimEnvironment* env, astore::AStoreClient* client,
                 Options options, std::unique_ptr<astore::SegmentRing> ring,
                 uint64_t next_lsn)
      : env_(env),
        client_(client),
        options_(options),
        ring_(std::move(ring)),
        watermark_(env->clock(), next_lsn - 1),
        committer_(env->clock(), &watermark_,
                   [this](const std::vector<GroupCommitter::Item>& items) {
                     return FlushGroup(items);
                   }),
        next_lsn_(next_lsn) {
    InitMetrics("pmem");
  }

  void InitMetrics(const char* backend);

  Status FlushGroup(const std::vector<GroupCommitter::Item>& items);

  sim::SimEnvironment* env_;
  astore::AStoreClient* client_;
  Options options_;
  std::unique_ptr<astore::SegmentRing> ring_;
  DurabilityWatermark watermark_;
  GroupCommitter committer_;

  mutable vedb::Mutex mu_{"logstore.astore"};
  uint64_t next_lsn_ GUARDED_BY(mu_) = 1;

  // Observability (resolved once at construction; see obs/metrics.h).
  obs::Counter* appends_ = nullptr;
  obs::HistogramMetric* append_ns_ = nullptr;
  obs::Counter* flushes_ = nullptr;
  obs::Counter* flush_bytes_ = nullptr;
};

/// Shared batch framing: several REDO payloads packed into one physical log
/// record. Exposed for the recovery paths of both backends.
std::string EncodeBatchPayload(const std::vector<Slice>& payloads);
std::string EncodeBatchPayload(const std::vector<std::string>& payloads);
bool DecodeBatchPayload(Slice in, uint64_t first_lsn,
                        std::vector<astore::LogRecord>* out);

}  // namespace vedb::logstore

#endif  // VEDB_LOGSTORE_LOGSTORE_H_
