#!/usr/bin/env bash
# lint.sh — repo-specific correctness lint for the veDB/AStore codebase.
#
# Rules (all greppable, no compiler needed):
#
#   1. pmem-raw-write: raw memcpy/memmove/memset is banned in the layers
#      that sit on top of the PMem abstraction (src/astore, src/net,
#      src/logstore, src/ebp). All bytes headed for persistent memory must
#      flow through the PmemDevice API so the persist checker sees them.
#      Genuinely volatile uses are waived with a `// pmem-ok` comment on
#      the same line.
#
#   2. pmem-api-bypass: PmemDevice::WriteFromRemote is the RDMA fabric's
#      private entry point. Calling it outside src/pmem and src/net
#      bypasses the fabric's DDIO/persistence model.
#
#   3. status-discard: a `(void)` cast that discards a call result must be
#      justified by a `discard-ok:` comment on the same line or within the
#      four preceding lines. (The compiler half of this rule is
#      [[nodiscard]] on Status/Result plus -Werror in CI; this half makes
#      sure every explicit discard says why.)
#
#   4. naked-thread: std::thread / pthread_* are banned outside src/sim.
#      All concurrency must go through the sim runtime (ActorGroup,
#      VirtualCondition, vedb::Mutex) so the deterministic scheduler, the
#      race detector, and the lock-order graph see every thread and lock.
#      A deliberate exception is waived with a `// thread-ok` comment on
#      the same line.
#
# In addition, if clang-tidy is on PATH, it is run over src/ with the
# repo's .clang-tidy config. Containers without clang-tidy (like the CI
# sanitizer image) still get rules 1-3.
#
# Usage:
#   scripts/lint.sh                # lint the repo; exit 1 on any violation
#   scripts/lint.sh --self-test    # verify the rules trip on the seeded
#                                  # fixtures under scripts/lint_fixtures/
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

FAILED=0

note() { printf '%s\n' "$*"; }
fail() {
  printf 'lint: %s\n' "$*" >&2
  FAILED=1
}

# --- Rule 1: raw byte-level writes above the PMem API -----------------------
# Matches actual calls (`memcpy(`), not mentions in comments.
check_pmem_raw_write() {
  local -a dirs=("$@")
  local hits
  hits=$(grep -rnE '\b(memcpy|memmove|memset)[[:space:]]*\(' \
              --include='*.cc' --include='*.h' "${dirs[@]}" 2>/dev/null |
         grep -v 'pmem-ok')
  if [[ -n "$hits" ]]; then
    fail "raw memcpy/memmove/memset above the PmemDevice API (add the bytes
lint: through PmemDevice, or waive a volatile use with '// pmem-ok'):"
    printf '%s\n' "$hits" >&2
  fi
}

# --- Rule 2: WriteFromRemote outside the fabric -----------------------------
check_pmem_api_bypass() {
  local root="$1"
  local hits
  hits=$(grep -rnE '\bWriteFromRemote[[:space:]]*\(' \
              --include='*.cc' --include='*.h' "$root" 2>/dev/null |
         grep -vE "^$root/(pmem|net)/")
  if [[ -n "$hits" ]]; then
    fail "PmemDevice::WriteFromRemote called outside src/pmem and src/net
lint: (route remote writes through the RDMA fabric):"
    printf '%s\n' "$hits" >&2
  fi
}

# --- Rule 3: (void) discards need a discard-ok justification ----------------
check_status_discard() {
  local -a dirs=("$@")
  local file rule_failed=0
  while IFS= read -r file; do
    awk -v file="$file" '
      { lines[NR] = $0 }
      # A call result being discarded: "(void)" immediately followed by an
      # expression that contains a "(". Plain "(void)var;" silencing is fine.
      /\(void\)[[:space:]]*[A-Za-z_][^;]*\(/ {
        ok = 0
        for (i = NR; i >= NR - 4 && i >= 1; i--) {
          if (lines[i] ~ /discard-ok/) { ok = 1; break }
        }
        if (!ok) {
          printf "%s:%d: %s\n", file, NR, $0
          bad = 1
        }
      }
      END { exit bad }
    ' "$file" >&2 || rule_failed=1
  done < <(find "${dirs[@]}" \
               \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) \
           2>/dev/null)
  if [[ $rule_failed -ne 0 ]]; then
    fail "unjustified (void) discard(s) above — explain each with a" \
         "'// discard-ok: <reason>' comment on or just above the line"
  fi
}

# --- Rule 4: no naked threads outside the sim runtime -----------------------
check_naked_threads() {
  local -a dirs=("$@")
  local hits
  hits=$(grep -rnE '\bstd::thread\b|\bpthread_[a-z_]+[[:space:]]*\(' \
              --include='*.cc' --include='*.h' "${dirs[@]}" 2>/dev/null |
         grep -v 'thread-ok')
  if [[ -n "$hits" ]]; then
    fail "naked std::thread/pthread_* outside src/sim (spawn through the
lint: sim runtime so the scheduler and detectors see it, or waive a
lint: deliberate use with '// thread-ok'):"
    printf '%s\n' "$hits" >&2
  fi
}

# --- clang-tidy (optional: skipped when the toolchain lacks it) -------------
run_clang_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    note "lint: clang-tidy not found on PATH; skipping (rules 1-3 still ran)"
    return 0
  fi
  if [[ ! -f build/compile_commands.json ]]; then
    note "lint: no build/compile_commands.json; configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON to enable clang-tidy"
    return 0
  fi
  local -a files
  mapfile -t files < <(find src -name '*.cc')
  if ! clang-tidy -p build --quiet "${files[@]}"; then
    fail "clang-tidy reported issues"
  fi
}

self_test() {
  # Each fixture seeds exactly one violation; every rule must trip on it.
  local fx="scripts/lint_fixtures"
  local st=0

  FAILED=0
  check_pmem_raw_write "$fx/raw_write"
  [[ $FAILED -eq 1 ]] || { echo "self-test: rule 1 did NOT trip" >&2; st=1; }

  FAILED=0
  check_pmem_api_bypass "$fx/bypass/src"
  [[ $FAILED -eq 1 ]] || { echo "self-test: rule 2 did NOT trip" >&2; st=1; }

  FAILED=0
  check_status_discard "$fx/discard"
  [[ $FAILED -eq 1 ]] || { echo "self-test: rule 3 did NOT trip" >&2; st=1; }

  FAILED=0
  check_naked_threads "$fx/threads"
  [[ $FAILED -eq 1 ]] || { echo "self-test: rule 4 did NOT trip" >&2; st=1; }

  # And none of them may trip on the clean fixture.
  FAILED=0
  check_pmem_raw_write "$fx/clean"
  check_pmem_api_bypass "$fx/clean"
  check_status_discard "$fx/clean"
  check_naked_threads "$fx/clean"
  [[ $FAILED -eq 0 ]] || { echo "self-test: false positive on clean fixture" >&2; st=1; }

  if [[ $st -eq 0 ]]; then
    echo "lint self-test: OK (4 rules trip on fixtures, clean file passes)"
  fi
  return $st
}

if [[ "${1:-}" == "--self-test" ]]; then
  self_test
  exit $?
fi

check_pmem_raw_write src/astore src/net src/logstore src/ebp src/topic \
                     src/qos
check_pmem_api_bypass src
check_status_discard src tests bench examples
check_naked_threads src/astore src/blob src/common src/ebp src/engine \
                    src/logstore src/net src/obs src/pagestore src/pmem \
                    src/query src/topic src/qos src/workload tests bench \
                    examples
run_clang_tidy

if [[ $FAILED -eq 0 ]]; then
  echo "lint: OK"
fi
exit $FAILED
