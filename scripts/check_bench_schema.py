#!/usr/bin/env python3
"""Validates bench results JSON against the obs::Snapshot schema.

CI runs a short deterministic bench (bench_table2_log_micro) and feeds the
file(s) it wrote into this checker. The point is schema drift: if the C++
exporter (src/obs/export.cc) changes shape without bumping
Snapshot::kSchemaVersion and updating this script, the bench-smoke job
fails. Pure stdlib; exits non-zero with a pointed message on violation.

Usage: check_bench_schema.py results/bench_table2_log_micro.json [...]
"""

import json
import sys

SCHEMA_VERSION = 1


class Drift(Exception):
    pass


def expect(cond, path, msg):
    if not cond:
        raise Drift(f"{path}: {msg}")


def check_labels(labels, path):
    expect(isinstance(labels, dict), path, "labels must be an object")
    for k, v in labels.items():
        expect(isinstance(k, str) and isinstance(v, str), path,
               "labels must map string -> string")
    expect(list(labels.keys()) == sorted(labels.keys()), path,
           "label keys must be sorted (canonical form)")


def check_sample(sample, path, value_fields):
    expect(isinstance(sample, dict), path, "sample must be an object")
    expect(isinstance(sample.get("name"), str), path, "missing string 'name'")
    check_labels(sample.get("labels"), f"{path}.labels")
    for field in value_fields:
        expect(isinstance(sample.get(field), int), path,
               f"missing integer '{field}' (floats are schema drift: the "
               "exporter emits integers only)")


def check_snapshot(snap, path):
    expect(isinstance(snap, dict), path, "snapshot must be an object")
    expect(snap.get("schema_version") == SCHEMA_VERSION, path,
           f"schema_version must be {SCHEMA_VERSION}, got "
           f"{snap.get('schema_version')!r}")
    expect(isinstance(snap.get("virtual_time_ns"), int), path,
           "missing integer 'virtual_time_ns'")
    expect(isinstance(snap.get("run_label"), str), path,
           "missing string 'run_label'")
    for kind, fields in (("counters", ["value"]),
                         ("gauges", ["value"]),
                         ("histograms",
                          ["count", "sum", "min", "max", "p50", "p95", "p99"])):
        arr = snap.get(kind)
        expect(isinstance(arr, list), path, f"missing array '{kind}'")
        keys = []
        for i, sample in enumerate(arr):
            check_sample(sample, f"{path}.{kind}[{i}]", fields)
            keys.append((sample["name"], tuple(sorted(sample["labels"].items()))))
        expect(keys == sorted(keys), f"{path}.{kind}",
               "samples must be sorted by (name, labels) — determinism drift")


def check_qos_labels(snap, path):
    """Every qos.* sample must carry a tenant label: an unlabeled qos metric
    cannot be attributed, which silently breaks the per-tenant accounting
    the admission controller exists to provide."""
    for kind in ("counters", "gauges", "histograms"):
        for i, sample in enumerate(snap.get(kind, [])):
            if sample["name"].startswith("qos."):
                expect("tenant" in sample["labels"],
                       f"{path}.{kind}[{i}]",
                       f"qos metric '{sample['name']}' lacks a 'tenant' label")


def find_sample(snap, kind, name, labels):
    for sample in snap.get(kind, []):
        if sample["name"] == name and sample["labels"] == labels:
            return sample
    return None


def check_noisy_neighbor(doc, filename):
    """Bench-specific contract for bench_topic_noisy_neighbor."""
    expect(isinstance(doc.get("isolation_pass"), bool), filename,
           "missing boolean 'isolation_pass'")
    for key in ("tenant_a_throttles", "tenant_b_throttles"):
        expect(isinstance(doc.get(key), int), filename,
               f"missing integer '{key}'")
    by_label = {s.get("run_label"): s for s in doc["configs"]}
    expect("topic_noisy/noisy_qos" in by_label, filename,
           "missing 'topic_noisy/noisy_qos' config")
    noisy = by_label["topic_noisy/noisy_qos"]
    throttle = find_sample(noisy, "counters", "qos.throttle",
                           {"tenant": "tenant-a"})
    expect(throttle is not None, filename,
           "noisy_qos config lacks qos.throttle{tenant=tenant-a}")
    expect(throttle["value"] == doc["tenant_a_throttles"], filename,
           "tenant_a_throttles extra disagrees with the snapshot counter")


def check_cm_failover_chaos(doc, filename):
    """Bench-specific contract for bench_cm_failover_chaos: the chaos
    acceptance bar must be visible in the results document, and the extras
    must agree with the embedded snapshot's counters."""
    for key in ("chaos_pass", "deterministic", "double_grant"):
        expect(isinstance(doc.get(key), bool), filename,
               f"missing boolean '{key}'")
    for key in ("operations", "errors", "retries", "cm_failovers",
                "client_cm_failovers", "lease_renew_failures", "final_term"):
        expect(isinstance(doc.get(key), int), filename,
               f"missing integer '{key}'")
    expect(isinstance(doc.get("final_primary"), str), filename,
           "missing string 'final_primary'")
    snap = doc["configs"][0]
    expect(snap.get("run_label") == "cm_failover_chaos", filename,
           "first config must carry run_label 'cm_failover_chaos'")
    failovers = sum(s["value"] for s in snap.get("counters", [])
                    if s["name"] == "cm.failovers")
    expect(failovers == doc["cm_failovers"], filename,
           "cm_failovers extra disagrees with the snapshot counter")
    retries = sum(s["value"] for s in snap.get("counters", [])
                  if s["name"] == "astore.client.retries")
    expect(retries == doc["retries"], filename,
           "retries extra disagrees with the snapshot counter")


def check_scrub_chaos(doc, filename):
    """Bench-specific contract for bench_scrub_chaos: the integrity
    acceptance bar (durability oracle, clean replicas, determinism) must be
    visible in the results document, and the repair/quarantine extras must
    agree with the embedded snapshot's counters."""
    for key in ("chaos_pass", "deterministic", "durability_ok",
                "replicas_clean"):
        expect(isinstance(doc.get(key), bool), filename,
               f"missing boolean '{key}'")
    for key in ("operations", "errors", "retries", "injected",
                "corrupt_reads", "read_repairs", "scrub_repairs",
                "scrub_reports", "quarantines", "rebuilds"):
        expect(isinstance(doc.get(key), int), filename,
               f"missing integer '{key}'")
    snap = doc["configs"][0]
    expect(snap.get("run_label") == "scrub_chaos", filename,
           "first config must carry run_label 'scrub_chaos'")
    for prefix in ("astore.scrub.", "astore.repair."):
        expect(any(s["name"].startswith(prefix)
                   for s in snap.get("counters", [])), filename,
               f"snapshot lacks any '{prefix}*' counter — the scrubber or "
               "repair path did not run")
    for extra, counter in (("scrub_repairs", "astore.scrub.repairs"),
                           ("read_repairs", "astore.repair.read_repairs"),
                           ("quarantines", "astore.repair.quarantines")):
        total = sum(s["value"] for s in snap.get("counters", [])
                    if s["name"] == counter)
        expect(total == doc[extra], filename,
               f"{extra} extra disagrees with the '{counter}' snapshot sum")


def check_table2(doc, filename):
    """Bench-specific contract for bench_table2_log_micro: the log hot-path
    gate (client-dominated share after the doorbell-coalescing rework) and
    the doorbell telemetry must be visible in the results document, and the
    extras must agree with the pmem config's snapshot."""
    expect(isinstance(doc.get("breakdown_pass"), bool), filename,
           "missing boolean 'breakdown_pass'")
    for key in ("client_share_pm", "ring_doorbells", "coalesced_appends"):
        expect(isinstance(doc.get(key), int), filename,
               f"missing integer '{key}'")
    expect(0 <= doc["client_share_pm"] <= 1000, filename,
           "client_share_pm must be per-mille (0..1000)")
    by_label = {s.get("run_label"): s for s in doc["configs"]}
    expect("table2/pmem" in by_label, filename,
           "missing 'table2/pmem' config")
    pmem = by_label["table2/pmem"]
    doorbells = find_sample(pmem, "counters", "ring.doorbells", {})
    expect(doorbells is not None, filename,
           "pmem config lacks the 'ring.doorbells' counter")
    expect(doorbells["value"] == doc["ring_doorbells"], filename,
           "ring_doorbells extra disagrees with the snapshot counter")
    batch = find_sample(pmem, "histograms", "ring.doorbell_batch", {})
    expect(batch is not None, filename,
           "pmem config lacks the 'ring.doorbell_batch' histogram "
           "(per-doorbell batch sizes)")
    expect(batch["count"] == doc["ring_doorbells"], filename,
           "every doorbell must contribute one doorbell_batch sample")
    coalesced = find_sample(pmem, "counters",
                            "astore.client.coalesced_appends", {})
    expect(coalesced is not None, filename,
           "pmem config lacks the 'astore.client.coalesced_appends' counter")
    expect(coalesced["value"] == doc["coalesced_appends"], filename,
           "coalesced_appends extra disagrees with the snapshot counter")
    expect(isinstance(doc.get("breakdown"), dict), filename,
           "table2 must embed a non-null 'breakdown' object")


def check_breakdown(bd, path):
    if bd is None:
        return
    expect(isinstance(bd, dict), path, "breakdown must be an object or null")
    parts = ["client_ns", "network_ns", "server_ns", "pmem_flush_ns"]
    for field in parts + ["total_ns"]:
        expect(isinstance(bd.get(field), int), path,
               f"missing integer '{field}'")
    total = bd["total_ns"]
    sum_parts = sum(bd[p] for p in parts)
    expect(abs(sum_parts - total) <= 1, path,
           f"breakdown stages sum to {sum_parts} but total_ns is {total} "
           "(must tile the end-to-end span within 1 virtual tick)")


def check_file(filename):
    with open(filename, "r", encoding="utf-8") as f:
        doc = json.load(f)
    expect(isinstance(doc, dict), filename, "top level must be an object")
    expect(isinstance(doc.get("bench"), str), filename,
           "missing string 'bench'")
    expect(doc.get("schema_version") == SCHEMA_VERSION, filename,
           f"schema_version must be {SCHEMA_VERSION}")
    configs = doc.get("configs")
    expect(isinstance(configs, list) and configs, filename,
           "missing non-empty array 'configs'")
    for i, snap in enumerate(configs):
        check_snapshot(snap, f"{filename}.configs[{i}]")
        check_qos_labels(snap, f"{filename}.configs[{i}]")
    if doc["bench"] == "topic_noisy_neighbor":
        check_noisy_neighbor(doc, filename)
    if doc["bench"] == "cm_failover_chaos":
        check_cm_failover_chaos(doc, filename)
    if doc["bench"] == "scrub_chaos":
        check_scrub_chaos(doc, filename)
    if doc["bench"] == "bench_table2_log_micro":
        check_table2(doc, filename)
    if "breakdown" in doc:
        check_breakdown(doc["breakdown"], f"{filename}.breakdown")
    if "trace_spans" in doc:
        expect(isinstance(doc["trace_spans"], list), filename,
               "'trace_spans' must be an array")
    labels = [s.get("run_label") for s in configs]
    expect(len(set(labels)) == len(labels), filename,
           f"duplicate run_label among configs: {labels}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for filename in argv[1:]:
        try:
            check_file(filename)
        except Drift as e:
            print(f"SCHEMA DRIFT: {e}", file=sys.stderr)
            return 1
        except (OSError, json.JSONDecodeError) as e:
            print(f"ERROR reading {filename}: {e}", file=sys.stderr)
            return 1
        print(f"ok: {filename}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
