// Lint fixture: a file none of the lint rules may flag.
namespace fixture {
struct Status {
  bool ok() const { return true; }
};
Status DoWork();

int Clean() {
  std::thread* waived = nullptr;  // thread-ok: fixture for the rule-4 waiver
  (void)waived;
  int unused = 0;
  (void)unused;  // plain variable silencing: not a discarded call
  // discard-ok: best-effort call in a fixture.
  (void)DoWork();
  return 0;
}
}  // namespace fixture
