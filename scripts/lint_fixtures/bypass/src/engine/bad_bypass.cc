// Lint fixture: seeds exactly one pmem-api-bypass violation.
// Calls PmemDevice::WriteFromRemote from outside src/pmem and src/net.
namespace fixture {
struct PmemDevice {
  int WriteFromRemote(unsigned long offset, const char* data);
};

int BadBypass(PmemDevice* dev, const char* data) {
  return dev->WriteFromRemote(0, data);  // violation: fabric-only entry point
}
}  // namespace fixture
