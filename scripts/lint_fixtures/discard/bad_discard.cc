// Lint fixture: seeds exactly one status-discard violation.
// The first (void) cast has no discard-ok justification.
namespace fixture {
struct Status {
  bool ok() const { return true; }
};
Status DoWork();

void BadDiscard() {
  (void)DoWork();  // violation: no justification for dropping the Status
}

void GoodDiscard() {
  // discard-ok: fixture demonstrating a justified discard.
  (void)DoWork();
}
}  // namespace fixture
