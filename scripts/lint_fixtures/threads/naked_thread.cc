// Fixture for lint rule 4 (naked-thread): spawning a raw std::thread
// outside src/sim must trip the lint.
#include <thread>

void SpawnWorker() {
  std::thread worker([] {});
  worker.join();
}
