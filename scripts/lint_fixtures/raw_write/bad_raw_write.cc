// Lint fixture: seeds exactly one pmem-raw-write violation.
// scripts/lint.sh --self-test must report the memcpy below.
#include <cstring>

void BadRawWrite(char* pmem_base, const char* src, unsigned long n) {
  memcpy(pmem_base, src, n);  // violation: raw write above the PMem API
}

void WaivedVolatileCopy(char* scratch, const char* src, unsigned long n) {
  memcpy(scratch, src, n);  // pmem-ok: DRAM scratch buffer, never persisted
}
