// Shared helpers for the figure/table reproduction benches: canonical
// cluster configurations (scaled versions of Table I), console table
// printing, and metrics-registry snapshot/export plumbing (obs/export.h).

#ifndef VEDB_BENCH_BENCH_UTIL_H_
#define VEDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/env.h"
#include "workload/cluster.h"

namespace vedb::bench {

/// Cluster preset approximating Table I, scaled for simulation. `astore`
/// selects the PMem log backend; `ebp_capacity` of 0 disables the EBP.
inline workload::ClusterOptions MakeClusterOptions(bool astore_log,
                                                   uint64_t ebp_capacity,
                                                   uint64_t seed = 2023) {
  workload::ClusterOptions opts;
  opts.seed = seed;
  opts.use_astore_log = astore_log;
  opts.enable_ebp = ebp_capacity > 0;
  opts.astore_server.pmem_capacity = 192 * kMiB;
  opts.astore_log.ring.segment_size = 1 * kMiB;
  opts.astore_log.ring.ring_size = 10;
  opts.ebp.capacity = ebp_capacity;
  opts.ebp.segment_size = 2 * kMiB;
  return opts;
}

inline void PrintHeader(const std::string& title) {
  printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    printf("%-*s", width, cell.c_str());
  }
  printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Parses the optional "ops"/"scale" first CLI argument benches take so CI
/// can run them short and deterministic; falls back to `def` (and clamps to
/// >= 1) on absence or garbage.
inline int ArgInt(int argc, char** argv, int def) {
  if (argc < 2) return def;
  const int v = atoi(argv[1]);
  return v >= 1 ? v : def;
}

/// Snapshots the default metrics registry at the cluster's current virtual
/// time under `run_label`, then zeroes every metric value so the next
/// configuration of a multi-config bench starts from a clean registry.
/// Call while the cluster (and its clock) is still alive.
inline obs::Snapshot CollectRunSnapshot(sim::SimEnvironment* env,
                                        const std::string& run_label) {
  obs::Snapshot snap = obs::CollectSnapshot(
      obs::MetricsRegistry::Default(), env->clock()->Now(), run_label);
  obs::MetricsRegistry::Default().ResetValues();
  return snap;
}

/// Histogram-sample accessors in milliseconds (0 when the sample is absent
/// or empty) — benches report from the registry, not private histograms.
inline double AvgMs(const obs::Snapshot::HistogramSample* h) {
  if (h == nullptr || h->count == 0) return 0.0;
  return static_cast<double>(h->sum) / static_cast<double>(h->count) / 1e6;
}
inline double P95Ms(const obs::Snapshot::HistogramSample* h) {
  return h == nullptr ? 0.0 : static_cast<double>(h->p95) / 1e6;
}
inline double P99Ms(const obs::Snapshot::HistogramSample* h) {
  return h == nullptr ? 0.0 : static_cast<double>(h->p99) / 1e6;
}

/// Assembles the standard bench results document: a JSON object wrapping
/// per-configuration registry snapshots plus optional extra fields, written
/// to results/<filename>. Extras must already be valid JSON fragments of
/// the form "\"key\": value".
inline Status WriteBenchResults(const std::string& bench_name,
                                const std::string& filename,
                                const std::vector<obs::Snapshot>& configs,
                                const std::vector<std::string>& extras = {}) {
  std::string out = "{\"bench\":\"" + bench_name + "\",";
  out += "\"schema_version\":" + std::to_string(obs::Snapshot::kSchemaVersion);
  for (const std::string& extra : extras) {
    out += ",";
    out += extra;
  }
  out += ",\"configs\":[";
  for (size_t i = 0; i < configs.size(); ++i) {
    if (i > 0) out += ",";
    out += configs[i].ToJson();
  }
  out += "]}";
  return obs::WriteResultsFile("results", filename, out);
}

}  // namespace vedb::bench

#endif  // VEDB_BENCH_BENCH_UTIL_H_
