// Shared helpers for the figure/table reproduction benches: canonical
// cluster configurations (scaled versions of Table I) and console table
// printing.

#ifndef VEDB_BENCH_BENCH_UTIL_H_
#define VEDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "workload/cluster.h"

namespace vedb::bench {

/// Cluster preset approximating Table I, scaled for simulation. `astore`
/// selects the PMem log backend; `ebp_capacity` of 0 disables the EBP.
inline workload::ClusterOptions MakeClusterOptions(bool astore_log,
                                                   uint64_t ebp_capacity,
                                                   uint64_t seed = 2023) {
  workload::ClusterOptions opts;
  opts.seed = seed;
  opts.use_astore_log = astore_log;
  opts.enable_ebp = ebp_capacity > 0;
  opts.astore_server.pmem_capacity = 192 * kMiB;
  opts.astore_log.ring.segment_size = 1 * kMiB;
  opts.astore_log.ring.ring_size = 10;
  opts.ebp.capacity = ebp_capacity;
  opts.ebp.segment_size = 2 * kMiB;
  return opts;
}

inline void PrintHeader(const std::string& title) {
  printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    printf("%-*s", width, cell.c_str());
  }
  printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace vedb::bench

#endif  // VEDB_BENCH_BENCH_UTIL_H_
