// Noisy-neighbor isolation bench for the topic + QoS stack: tenant A floods
// its topic at ~10x its configured rate limit while tenant B runs a steady,
// well-under-limit produce/consume loop on the same AStore cluster. With
// admission control on, A queues behind its own token bucket (qos.throttle
// climbs for A, stays zero for B) and B's consume tail stays within 25% of
// its solo-run baseline. A third configuration repeats the contended run
// with QoS disabled for contrast.
//
// Exit code is the isolation verdict (0 = PASS), so CI can gate on it; the
// full registry snapshot per configuration lands in results/.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workload/topic_workload.h"

namespace vedb {
namespace {

workload::TopicTenantSpec TenantA() {
  workload::TopicTenantSpec a;
  a.name = "tenant-a";
  a.limits.rate_bytes_per_sec = 1 * kMiB;  // flooded ~10x below
  a.limits.burst_bytes = 64 * kKiB;
  a.limits.max_inflight_bytes = 256 * kKiB;
  a.partitions = 2;
  a.producers = 4;
  a.consumers = 1;
  a.message_bytes = 32 * kKiB;
  a.produce_interval = 0;  // back-to-back: offered load >> rate limit
  a.consume_interval = 2 * kMillisecond;
  return a;
}

workload::TopicTenantSpec TenantB() {
  workload::TopicTenantSpec b;
  b.name = "tenant-b";
  b.limits.rate_bytes_per_sec = 2 * kMiB;  // offered ~1 MiB/s: never limited
  b.limits.burst_bytes = 256 * kKiB;
  b.limits.max_inflight_bytes = 1 * kMiB;
  b.partitions = 1;
  b.producers = 1;
  b.consumers = 1;
  b.message_bytes = 1 * kKiB;
  b.produce_interval = 1 * kMillisecond;
  b.consume_interval = 2 * kMillisecond;
  return b;
}

struct RunOutcome {
  workload::TopicWorkloadResult result;
  obs::Snapshot snapshot;
};

Result<RunOutcome> RunConfig(const std::string& label, bool with_a,
                             bool enable_qos, Duration duration) {
  workload::TopicWorkloadOptions opts;
  opts.seed = 2023;
  opts.warmup = 100 * kMillisecond;
  opts.duration = duration;
  opts.enable_qos = enable_qos;
  if (with_a) opts.tenants.push_back(TenantA());
  opts.tenants.push_back(TenantB());

  RunOutcome out;
  VEDB_ASSIGN_OR_RETURN(out.result, workload::RunTopicWorkload(opts));
  // The workload's environment is gone by now; snapshot at the run's final
  // virtual time, which is identical across seeded executions.
  out.snapshot = obs::CollectSnapshot(
      obs::MetricsRegistry::Default(),
      opts.warmup + opts.duration, label);
  obs::MetricsRegistry::Default().ResetValues();
  return out;
}

const workload::TenantStats* FindTenant(
    const workload::TopicWorkloadResult& r, const std::string& name) {
  for (const auto& t : r.tenants) {
    if (t.tenant == name) return &t;
  }
  return nullptr;
}

}  // namespace
}  // namespace vedb

int main(int argc, char** argv) {
  using namespace vedb;
  // Scale knob: CI passes a small factor; duration = scale * 100ms.
  const int scale = bench::ArgInt(argc, argv, 5);
  const Duration duration = static_cast<Duration>(scale) * 100 * kMillisecond;

  bench::PrintHeader("Topic noisy neighbor: per-tenant QoS isolation");

  auto solo = RunConfig("topic_noisy/solo_b", /*with_a=*/false,
                        /*enable_qos=*/true, duration);
  auto qos = RunConfig("topic_noisy/noisy_qos", /*with_a=*/true,
                       /*enable_qos=*/true, duration);
  auto noqos = RunConfig("topic_noisy/noisy_noqos", /*with_a=*/true,
                         /*enable_qos=*/false, duration);
  if (!solo.ok() || !qos.ok() || !noqos.ok()) {
    fprintf(stderr, "run failed: %s\n",
            (!solo.ok()   ? solo.status()
             : !qos.ok()  ? qos.status()
                          : noqos.status())
                .ToString()
                .c_str());
    return 1;
  }

  const workload::TenantStats* solo_b =
      FindTenant(solo.value().result, "tenant-b");
  const workload::TenantStats* qos_a =
      FindTenant(qos.value().result, "tenant-a");
  const workload::TenantStats* qos_b =
      FindTenant(qos.value().result, "tenant-b");
  const workload::TenantStats* noqos_b =
      FindTenant(noqos.value().result, "tenant-b");
  if (solo_b == nullptr || qos_a == nullptr || qos_b == nullptr ||
      noqos_b == nullptr) {
    fprintf(stderr, "missing tenant stats\n");
    return 1;
  }

  const double solo_p99_ms = solo_b->consume_latency.P99() / 1e6;
  const double qos_b_p99_ms = qos_b->consume_latency.P99() / 1e6;
  const double noqos_b_p99_ms = noqos_b->consume_latency.P99() / 1e6;

  bench::PrintRow({"config", "B cons P99 ms", "B consumed", "A throttles",
                   "B throttles"},
                  16);
  bench::PrintRow({"solo_b", bench::Fmt("%.3f", solo_p99_ms),
                   std::to_string(solo_b->consumed), "-",
                   std::to_string(solo_b->throttle_events)},
                  16);
  bench::PrintRow({"noisy_qos", bench::Fmt("%.3f", qos_b_p99_ms),
                   std::to_string(qos_b->consumed),
                   std::to_string(qos_a->throttle_events),
                   std::to_string(qos_b->throttle_events)},
                  16);
  bench::PrintRow({"noisy_noqos", bench::Fmt("%.3f", noqos_b_p99_ms),
                   std::to_string(noqos_b->consumed), "-", "-"},
                  16);

  // Isolation verdict: under contention with QoS on, B's consume tail stays
  // within 25% of solo; A pays throttle events, B pays none.
  const bool p99_ok = qos_b_p99_ms <= solo_p99_ms * 1.25;
  const bool a_throttled = qos_a->throttle_events > 0;
  const bool b_clean = qos_b->throttle_events == 0;
  const bool pass = p99_ok && a_throttled && b_clean;
  printf("\nisolation: %s  (B P99 %.3fms vs solo %.3fms limit %.3fms; "
         "A throttles=%llu, B throttles=%llu)\n",
         pass ? "PASS" : "FAIL", qos_b_p99_ms, solo_p99_ms,
         solo_p99_ms * 1.25,
         static_cast<unsigned long long>(qos_a->throttle_events),
         static_cast<unsigned long long>(qos_b->throttle_events));

  std::vector<std::string> extras;
  extras.push_back("\"isolation_pass\":" + std::string(pass ? "true" : "false"));
  extras.push_back("\"solo_b_consume_p99_ms\":" +
                   bench::Fmt("%.6f", solo_p99_ms));
  extras.push_back("\"noisy_qos_b_consume_p99_ms\":" +
                   bench::Fmt("%.6f", qos_b_p99_ms));
  extras.push_back("\"noisy_noqos_b_consume_p99_ms\":" +
                   bench::Fmt("%.6f", noqos_b_p99_ms));
  extras.push_back("\"tenant_a_throttles\":" +
                   std::to_string(qos_a->throttle_events));
  extras.push_back("\"tenant_b_throttles\":" +
                   std::to_string(qos_b->throttle_events));
  const Status w = bench::WriteBenchResults(
      "topic_noisy_neighbor", "bench_topic_noisy_neighbor.json",
      {solo.value().snapshot, qos.value().snapshot, noqos.value().snapshot},
      extras);
  if (!w.ok()) {
    fprintf(stderr, "results export failed: %s\n", w.ToString().c_str());
    return 1;
  }
  return pass ? 0 : 1;
}
