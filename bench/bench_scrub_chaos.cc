// Data-integrity chaos bench: runs the seeded corruption+crash campaign
// (bit flips, zeroed cachelines, latent/sticky bad regions planted into
// committed replicas while a storage node crashes and returns, with
// per-server scrubbers running) TWICE with the same seed and gates on the
// acceptance bar — zero errors surfaced to the workload, corruption
// actually injected, repairs > 0, the durability oracle (no acked write
// ever served wrong), every injected corruption repaired or quarantined,
// and a byte-identical metrics snapshot across the two runs.
//
// Exit code is the verdict (0 = PASS) so CI can gate on it; the full
// registry snapshot of the first run lands in results/.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "workload/scrub_chaos.h"

int main(int argc, char** argv) {
  using namespace vedb;
  // Scale knob: duration = scale * 100ms. The fault script needs the
  // corruption era (200ms in) inside the run, so the floor is 4.
  const int scale = std::max(4, bench::ArgInt(argc, argv, 5));

  workload::ScrubChaosOptions opts;
  opts.duration = static_cast<Duration>(scale) * 100 * kMillisecond;
  // Leave the scrubbers ~400ms after the last injection to finish the tail.
  opts.shutdown_at = opts.warmup + opts.duration + 400 * kMillisecond;

  bench::PrintHeader("Scrub chaos: bit rot, verified reads, re-replication");
  workload::ScrubChaosResult first = workload::RunScrubChaos(opts);
  workload::ScrubChaosResult second = workload::RunScrubChaos(opts);
  const bool deterministic =
      first.snapshot_json == second.snapshot_json &&
      first.operations == second.operations &&
      first.injected == second.injected;

  bench::PrintRow({"ops", "errors", "injected", "read_repairs",
                   "scrub_repairs", "quarantines"},
                  16);
  bench::PrintRow({std::to_string(first.operations),
                   std::to_string(first.errors),
                   std::to_string(first.injected),
                   std::to_string(first.read_repairs),
                   std::to_string(first.scrub_repairs),
                   std::to_string(first.quarantines)},
                  16);
  printf("corrupt reads detected: %llu, scrub reports: %llu, rebuilds: %llu\n",
         static_cast<unsigned long long>(first.corrupt_reads),
         static_cast<unsigned long long>(first.scrub_reports),
         static_cast<unsigned long long>(first.rebuilds));

  const bool pass = first.Passed() && second.Passed() && deterministic;
  printf("\nchaos: %s  (errors=%llu injected=%llu repairs=%llu "
         "durability_ok=%s replicas_clean=%s deterministic=%s)\n",
         pass ? "PASS" : "FAIL",
         static_cast<unsigned long long>(first.errors),
         static_cast<unsigned long long>(first.injected),
         static_cast<unsigned long long>(
             first.read_repairs + first.scrub_repairs + first.quarantines),
         first.durability_ok ? "true" : "false",
         first.replicas_clean ? "true" : "false",
         deterministic ? "true" : "false");

  // WriteBenchResults wants obs::Snapshot objects, but the campaign's
  // registry died with its world; splice its serialized snapshot into the
  // standard results document by hand.
  std::string out = "{\"bench\":\"scrub_chaos\",";
  out += "\"schema_version\":" + std::to_string(obs::Snapshot::kSchemaVersion);
  out += ",\"chaos_pass\":" + std::string(pass ? "true" : "false");
  out += ",\"deterministic\":" + std::string(deterministic ? "true" : "false");
  out += ",\"durability_ok\":" +
         std::string(first.durability_ok ? "true" : "false");
  out += ",\"replicas_clean\":" +
         std::string(first.replicas_clean ? "true" : "false");
  out += ",\"operations\":" + std::to_string(first.operations);
  out += ",\"errors\":" + std::to_string(first.errors);
  out += ",\"retries\":" + std::to_string(first.retries);
  out += ",\"injected\":" + std::to_string(first.injected);
  out += ",\"corrupt_reads\":" + std::to_string(first.corrupt_reads);
  out += ",\"read_repairs\":" + std::to_string(first.read_repairs);
  out += ",\"scrub_repairs\":" + std::to_string(first.scrub_repairs);
  out += ",\"scrub_reports\":" + std::to_string(first.scrub_reports);
  out += ",\"quarantines\":" + std::to_string(first.quarantines);
  out += ",\"rebuilds\":" + std::to_string(first.rebuilds);
  out += ",\"configs\":[" + first.snapshot_json + "]}";
  if (!deterministic) {
    // Leave the second run's snapshot next to the first so a CI failure
    // can be diffed without rerunning anything.
    // discard-ok: best-effort debug aid; the bench already fails below
    (void)obs::WriteResultsFile("results", "bench_scrub_chaos_run2.json",
                                second.snapshot_json);
  }
  const Status w =
      obs::WriteResultsFile("results", "bench_scrub_chaos.json", out);
  if (!w.ok()) {
    fprintf(stderr, "results export failed: %s\n", w.ToString().c_str());
    return 1;
  }
  return pass ? 0 : 1;
}
