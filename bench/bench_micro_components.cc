// google-benchmark micro-benchmarks for the hot single-node code paths:
// page codec, REDO apply, expression evaluation, and CRC. These run in real
// time (no simulation) and guard against regressions in the per-row CPU
// work that everything above is built on.

#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "engine/page.h"
#include "engine/redo.h"
#include "engine/types.h"
#include "query/expr.h"

namespace vedb {
namespace {

void BM_RowEncodeDecode(benchmark::State& state) {
  engine::Row row = {engine::Value(12345), engine::Value("customer-name"),
                     engine::Value(3.14159), engine::Value(42)};
  for (auto _ : state) {
    std::string bytes;
    engine::EncodeRow(row, &bytes);
    engine::Row out;
    engine::DecodeRow(Slice(bytes), &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RowEncodeDecode);

void BM_PagePutGet(benchmark::State& state) {
  std::string image;
  engine::Page::Format(&image);
  engine::Page page(&image);
  const std::string row(120, 'r');
  uint16_t slot = 0;
  for (auto _ : state) {
    if (!page.PutRow(slot % 100, Slice(row)).ok()) {
      engine::Page::Format(&image);
    }
    Slice out;
    // discard-ok: timed lookup; the benchmark measures latency only.
    (void)page.GetRow(slot % 100, &out);
    benchmark::DoNotOptimize(out);
    slot++;
  }
}
BENCHMARK(BM_PagePutGet);

void BM_RedoApply(benchmark::State& state) {
  engine::RedoRecord rec;
  rec.type = engine::RedoType::kPutRow;
  rec.slot = 0;
  rec.row = std::string(120, 'x');
  std::string payload;
  rec.EncodeTo(&payload);
  std::string image;
  uint64_t lsn = 1;
  for (auto _ : state) {
    engine::ApplyRedoToPage(Slice(payload), lsn++, &image);
  }
}
BENCHMARK(BM_RedoApply);

void BM_ExprEval(benchmark::State& state) {
  using namespace query;
  ExprPtr e = Expr::And(Expr::ColCmp(1, CmpOp::kGe, engine::Value(10)),
                        Expr::ColCmp(2, CmpOp::kLt, engine::Value(0.5)));
  engine::Row row = {engine::Value(1), engine::Value(20),
                     engine::Value(0.25)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(e->EvalBool(row));
  }
}
BENCHMARK(BM_ExprEval);

void BM_Crc32c4K(benchmark::State& state) {
  const std::string data(4096, 'd');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(Slice(data)));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Crc32c4K);

void BM_PageCompact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string image;
    engine::Page::Format(&image);
    engine::Page page(&image);
    const std::string row(100, 'r');
    // discard-ok: fixture setup on a freshly formatted page cannot fail.
    for (uint16_t s = 0; s < 80; ++s) (void)page.PutRow(s, Slice(row));
    for (uint16_t s = 0; s < 80; s += 2) (void)page.DeleteRow(s);
    state.ResumeTiming();
    page.Compact();
  }
}
BENCHMARK(BM_PageCompact);

}  // namespace
}  // namespace vedb

BENCHMARK_MAIN();
