// CM-failover chaos bench: runs the seeded control-plane chaos campaign
// (crash the primary CM mid-workload, partition + heal a standby, revive
// the old primary) TWICE with the same seed and gates on the acceptance
// bar — zero errors surfaced to the workload, client retries > 0, at
// least one failover, no two CMs granting a lease in the same term, and a
// byte-identical metrics snapshot across the two runs.
//
// Exit code is the verdict (0 = PASS) so CI can gate on it; the full
// registry snapshot of the first run lands in results/.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workload/chaos.h"

int main(int argc, char** argv) {
  using namespace vedb;
  // Scale knob: duration = scale * 100ms. The fault script needs the
  // election (~300ms in) inside the run, so the floor is 4.
  const int scale = std::max(4, bench::ArgInt(argc, argv, 4));

  workload::ChaosCampaignOptions opts;
  opts.duration = static_cast<Duration>(scale) * 100 * kMillisecond;
  opts.shutdown_at = opts.warmup + opts.duration + 90 * kMillisecond;

  bench::PrintHeader("CM failover chaos: replicated control plane");
  workload::ChaosCampaignResult first = workload::RunCmFailoverChaos(opts);
  workload::ChaosCampaignResult second = workload::RunCmFailoverChaos(opts);
  const bool deterministic =
      first.snapshot_json == second.snapshot_json &&
      first.operations == second.operations && first.retries == second.retries;

  bench::PrintRow({"ops", "errors", "retries", "cm_failovers",
                   "client_rotations", "renew_failures"},
                  18);
  bench::PrintRow({std::to_string(first.operations),
                   std::to_string(first.errors),
                   std::to_string(first.retries),
                   std::to_string(first.failovers),
                   std::to_string(first.client_cm_failovers),
                   std::to_string(first.lease_renew_failures)},
                  18);
  printf("final primary: %s (term %llu round %llu)\n",
         first.final_primary.c_str(),
         static_cast<unsigned long long>(first.final_term),
         static_cast<unsigned long long>(first.final_term >> 16));

  const bool pass = first.Passed() && second.Passed() && deterministic;
  printf("\nchaos: %s  (errors=%llu retries=%llu failovers=%llu "
         "double_grant=%s deterministic=%s)\n",
         pass ? "PASS" : "FAIL",
         static_cast<unsigned long long>(first.errors),
         static_cast<unsigned long long>(first.retries),
         static_cast<unsigned long long>(first.failovers),
         first.double_grant ? "true" : "false",
         deterministic ? "true" : "false");

  // WriteBenchResults wants obs::Snapshot objects, but the campaign's
  // registry died with its world; splice its serialized snapshot into the
  // standard results document by hand.
  std::string out = "{\"bench\":\"cm_failover_chaos\",";
  out += "\"schema_version\":" + std::to_string(obs::Snapshot::kSchemaVersion);
  out += ",\"chaos_pass\":" + std::string(pass ? "true" : "false");
  out += ",\"deterministic\":" + std::string(deterministic ? "true" : "false");
  out += ",\"double_grant\":" + std::string(first.double_grant ? "true" : "false");
  out += ",\"operations\":" + std::to_string(first.operations);
  out += ",\"errors\":" + std::to_string(first.errors);
  out += ",\"retries\":" + std::to_string(first.retries);
  out += ",\"cm_failovers\":" + std::to_string(first.failovers);
  out += ",\"client_cm_failovers\":" + std::to_string(first.client_cm_failovers);
  out += ",\"lease_renew_failures\":" + std::to_string(first.lease_renew_failures);
  out += ",\"final_primary\":\"" + first.final_primary + "\"";
  out += ",\"final_term\":" + std::to_string(first.final_term);
  out += ",\"configs\":[" + first.snapshot_json + "]}";
  if (!deterministic) {
    // Leave the second run's snapshot next to the first so a CI failure
    // can be diffed without rerunning anything.
    // discard-ok: best-effort debug aid; the bench already fails below
    (void)obs::WriteResultsFile("results", "bench_cm_failover_chaos_run2.json",
                                second.snapshot_json);
  }
  const Status w =
      obs::WriteResultsFile("results", "bench_cm_failover_chaos.json", out);
  if (!w.ok()) {
    fprintf(stderr, "results export failed: %s\n", w.ToString().c_str());
    return 1;
  }
  return pass ? 0 : 1;
}
