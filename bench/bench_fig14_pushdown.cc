// Figure 14 reproduction: query push-down on the 22 TPC-CH analytical
// queries. Three configurations:
//   baseline        — no EBP, no push-down, default plans;
//   plan-change     — push-down-friendly plans but still executed locally
//                     (the paper's blue bars: isolates the optimizer's plan
//                     switch, e.g. Q13 NL join -> hash join);
//   PQ + EBP        — push-down-friendly plans with fragments executed on
//                     EBP hosts / PageStore (the paper's orange bars).
// Paper: Q1,6,11,13,15,20,22 gain 4x-24x; geomean over all 22 queries
// ~2.8x; vs the plan-change baseline, still ~2x.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "query/pushdown.h"
#include "workload/tpcc.h"
#include "workload/tpcch.h"

namespace vedb {
namespace {

struct Setup {
  std::unique_ptr<workload::VedbCluster> cluster;
  std::unique_ptr<workload::TpccDatabase> db;
  std::unique_ptr<query::PushdownRuntime> pushdown;
};

Setup MakeSetup(bool enable_ebp) {
  Setup s;
  workload::ClusterOptions opts =
      bench::MakeClusterOptions(true, enable_ebp ? 160 * kMiB : 0);
  opts.engine.buffer_pool.capacity_pages = 128;  // AP working sets exceed BP
  s.cluster = std::make_unique<workload::VedbCluster>(opts);
  std::vector<sim::SimNode*> ps_nodes;
  for (int i = 0; i < opts.pagestore_nodes; ++i) {
    ps_nodes.push_back(s.cluster->env()->GetNode("ps-" + std::to_string(i)));
  }
  s.pushdown = std::make_unique<query::PushdownRuntime>(
      s.cluster->env(), s.cluster->rpc(), s.cluster->pagestore(), ps_nodes,
      s.cluster->astore_servers(), query::PushdownRuntime::Options{});
  s.pushdown->AttachEbp(s.cluster->ebp());
  s.cluster->StartBackground();
  s.cluster->env()->clock()->RegisterActor();

  workload::TpccScale scale;
  scale.warehouses = 4;
  scale.customers_per_district = 80;
  scale.items = 500;
  scale.initial_orders_per_district = 40;
  s.db = std::make_unique<workload::TpccDatabase>(s.cluster->engine(), scale,
                                                  5, /*ch=*/true);
  Status load = s.db->Load();
  if (!load.ok()) fprintf(stderr, "load: %s\n", load.ToString().c_str());
  return s;
}

double TimeQuery(Setup* s, int q, bool friendly_plan, bool pushdown) {
  query::ExecContext ctx;
  ctx.engine = s->cluster->engine();
  ctx.pushdown = s->pushdown.get();
  ctx.enable_pushdown = pushdown;
  ctx.pushdown_row_threshold = 500;
  // All queries run three times; the average of runs two and three is used
  // (the paper's procedure, minimizing cold-cache effects).
  // discard-ok: warm-up run; only the timed runs below are reported.
  (void)workload::RunChQuery(q, s->db.get(), &ctx, friendly_plan);
  Duration total = 0;
  for (int run = 0; run < 2; ++run) {
    const Timestamp t0 = s->cluster->env()->clock()->Now();
    auto r = workload::RunChQuery(q, s->db.get(), &ctx, friendly_plan);
    if (!r.ok()) {
      fprintf(stderr, "Q%d failed: %s\n", q, r.status().ToString().c_str());
    }
    total += s->cluster->env()->clock()->Now() - t0;
  }
  return ToMillis(total / 2);
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;

  // Baseline + plan-change run on a cluster without EBP/PQ.
  Setup plain = MakeSetup(/*enable_ebp=*/false);
  double baseline[23], plan_change[23];
  for (int q = 1; q <= 22; ++q) {
    baseline[q] = TimeQuery(&plain, q, /*friendly=*/false, /*pq=*/false);
    plan_change[q] = TimeQuery(&plain, q, /*friendly=*/true, /*pq=*/false);
  }
  plain.cluster->env()->clock()->UnregisterActor();
  plain.cluster->Shutdown();

  // PQ+EBP run.
  Setup pq = MakeSetup(/*enable_ebp=*/true);
  double pushed[23];
  for (int q = 1; q <= 22; ++q) {
    pushed[q] = TimeQuery(&pq, q, /*friendly=*/true, /*pq=*/true);
  }
  pq.cluster->env()->clock()->UnregisterActor();
  pq.cluster->Shutdown();

  bench::PrintHeader(
      "Figure 14: push-down speedups on the 22 TPC-CH queries");
  bench::PrintRow({"query", "baseline ms", "PQ+EBP ms", "PQ speedup",
                   "plan-change only"},
                  16);
  double geo_pq = 1, geo_plan = 1, geo_vs_plan = 1;
  for (int q = 1; q <= 22; ++q) {
    const double s_pq = baseline[q] / pushed[q];
    const double s_plan = baseline[q] / plan_change[q];
    geo_pq *= s_pq;
    geo_plan *= s_plan;
    geo_vs_plan *= plan_change[q] / pushed[q];
    bench::PrintRow({"Q" + std::to_string(q), bench::Fmt("%.1f", baseline[q]),
                     bench::Fmt("%.1f", pushed[q]),
                     bench::Fmt("%.2fx", s_pq),
                     bench::Fmt("%.2fx", s_plan)},
                    16);
  }
  printf("\ngeomean: PQ+EBP %.2fx over baseline (paper ~2.8x); "
         "plan-change alone %.2fx; PQ+EBP vs plan-change %.2fx "
         "(paper ~2x)\n",
         std::pow(geo_pq, 1.0 / 22), std::pow(geo_plan, 1.0 / 22),
         std::pow(geo_vs_plan, 1.0 / 22));
  return 0;
}
