// Ablation: AStore's write-path design choices (Section IV-B).
//  (1) chained WRITE+WRITE+READ behind one doorbell (shipped design)
//  (2) the same three verbs posted as separate operations (three doorbells,
//      three round trips) — quantifies the chaining win
//  (3) DDIO left enabled — the RDMA READ no longer flushes to the
//      persistence domain, so writes are fast but NOT crash durable; the
//      bench demonstrates the durability failure that motivates disabling
//      DDIO.

#include <cstdio>

#include "astore/client.h"
#include "astore/cluster_manager.h"
#include "astore/server.h"
#include "bench/bench_util.h"
#include "common/histogram.h"
#include "net/rdma.h"
#include "sim/env.h"

namespace vedb {
namespace {

struct PathResult {
  double avg_us;
  bool crash_durable;
};

PathResult RunWritePath(bool chained, bool ddio_enabled) {
  sim::SimEnvironment env(77);
  net::RpcTransport rpc(&env);
  net::RdmaFabric fabric(&env);

  sim::NodeConfig cm_cfg;
  cm_cfg.storage = sim::HardwareProfile::NvmeSsd(env.NextSeed());
  sim::SimNode* cm_node = env.AddNode("cm", cm_cfg);
  astore::ClusterManager cm(&env, &rpc, cm_node,
                            astore::ClusterManager::Options{});
  std::vector<std::unique_ptr<astore::AStoreServer>> servers;
  for (int i = 0; i < 3; ++i) {
    sim::NodeConfig cfg;
    cfg.cpu_cores = 32;
    cfg.storage = sim::HardwareProfile::OptanePmem(env.NextSeed());
    sim::SimNode* node = env.AddNode("pmem-" + std::to_string(i), cfg);
    astore::AStoreServer::Options opts;
    opts.pmem_capacity = 32 * kMiB;
    opts.ddio_enabled = ddio_enabled;
    servers.push_back(std::make_unique<astore::AStoreServer>(
        &env, &rpc, &fabric, node, opts));
    cm.RegisterServer(servers.back().get());
  }
  sim::NodeConfig dbe_cfg;
  dbe_cfg.cpu_cores = 20;
  dbe_cfg.storage = sim::HardwareProfile::NvmeSsd(env.NextSeed());
  sim::SimNode* dbe = env.AddNode("dbe", dbe_cfg);

  env.clock()->RegisterActor();
  astore::AStoreClient client(&env, &rpc, &fabric, cm_node, dbe, 1,
                              astore::AStoreClient::Options{});
  // discard-ok: the sim CM is always reachable during setup.
  (void)client.Connect();
  auto seg = client.CreateSegment(8 * kMiB, 3);
  if (!seg.ok()) {
    fprintf(stderr, "create: %s\n", seg.status().ToString().c_str());
    env.clock()->UnregisterActor();
    return {0, false};
  }

  const std::string payload(4 * kKiB, 'w');
  const std::string meta(16, 'm');
  Histogram latency;
  const int kOps = 500;
  const auto route = (*seg)->route();
  for (int i = 0; i < kOps; ++i) {
    const uint64_t offset = static_cast<uint64_t>(i) * payload.size();
    const Timestamp t0 = env.clock()->Now();
    if (chained) {
      // The shipped data plane: one chained WRITE+WRITE+READ per replica,
      // all replicas posted in parallel (one doorbell each).
      std::vector<std::vector<net::RdmaWorkRequest>> chains;
      for (const auto& loc : route.replicas) {
        std::vector<net::RdmaWorkRequest> chain(3);
        chain[0].kind = net::RdmaWorkRequest::Kind::kWrite;
        chain[0].region = loc.region;
        chain[0].offset = loc.base_offset + offset;
        chain[0].write_data = Slice(payload);
        chain[1].kind = net::RdmaWorkRequest::Kind::kWrite;
        chain[1].region = loc.region;
        chain[1].offset = loc.io_meta_offset;
        chain[1].write_data = Slice(meta);
        chain[2].kind = net::RdmaWorkRequest::Kind::kRead;
        chain[2].region = loc.region;
        chain[2].offset = loc.io_meta_offset;
        chain[2].read_len = 0;
        chains.push_back(std::move(chain));
      }
      fabric.PostChainMulti(dbe, chains);
    } else {
      // Unchained: the same verbs as three separate posts — three
      // doorbells per replica and no overlap between the verbs.
      for (const auto& loc : route.replicas) {
        // discard-ok: raw-verb ablation measures cost, not durability.
        (void)fabric.Write(dbe, loc.region, loc.base_offset + offset,
                           Slice(payload));
        (void)fabric.Write(dbe, loc.region, loc.io_meta_offset, Slice(meta));
        (void)fabric.Read(dbe, loc.region, loc.io_meta_offset, 0, nullptr);
      }
    }
    latency.Add(env.clock()->Now() - t0);
  }

  // Crash test: power-fail every server, then check the last write.
  char probe[8];
  const uint64_t probe_off = (kOps - 1) * payload.size();
  for (auto& server : servers) server->pmem()->Crash();
  bool durable = false;
  if (client.Read(*seg, probe_off, sizeof(probe), probe).ok()) {
    durable = memcmp(probe, payload.data(), sizeof(probe)) == 0;
  }
  env.clock()->UnregisterActor();
  return {latency.Average() / 1e3, durable};
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Ablation: AStore RDMA write path (4KB appends, 3 replicas)");
  bench::PrintRow({"variant", "avg latency (us)", "crash durable"}, 42);
  PathResult chained = RunWritePath(true, false);
  bench::PrintRow({"chained WR+WR+READ, DDIO off (shipped)",
                   bench::Fmt("%.1f", chained.avg_us),
                   chained.crash_durable ? "yes" : "NO"},
                  42);
  PathResult unchained = RunWritePath(false, false);
  bench::PrintRow({"3 separate posts, DDIO off",
                   bench::Fmt("%.1f", unchained.avg_us),
                   unchained.crash_durable ? "yes" : "NO"},
                  42);
  PathResult ddio = RunWritePath(true, true);
  bench::PrintRow({"chained, DDIO ENABLED",
                   bench::Fmt("%.1f", ddio.avg_us),
                   ddio.crash_durable ? "yes" : "NO"},
                  42);
  printf("\nchaining saves %.1f us per write; DDIO-on is equally fast but "
         "loses data on power failure (why the paper disables it)\n",
         unchained.avg_us - chained.avg_us);
  return 0;
}
