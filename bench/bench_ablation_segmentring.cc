// Ablation: SegmentRing vs BlobGroup log-space management (Section V-A).
// The BlobGroup splits every append into fixed 8KB physical I/Os striped
// over four blobs; the SegmentRing writes each record whole. The paper
// calls out 256KB writes completing in ~0.1ms over one-sided RDMA — large
// writes are exactly where not splitting pays.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "logstore/logstore.h"

namespace vedb {
namespace {

double RunAppends(bool use_astore, size_t record_bytes, int ops) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(use_astore, 0);
  opts.astore_log.ring.segment_size = 4 * kMiB;
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  const std::string payload(record_bytes, 'r');
  Histogram latency;
  for (int i = 0; i < ops; ++i) {
    const Timestamp t0 = cluster.env()->clock()->Now();
    auto r = cluster.log()->AppendBatch({payload});
    if (!r.ok()) {
      fprintf(stderr, "append: %s\n", r.status().ToString().c_str());
      break;
    }
    latency.Add(cluster.env()->clock()->Now() - t0);
  }
  const double avg_us = latency.Average() / 1e3;
  cluster.env()->clock()->UnregisterActor();
  cluster.Shutdown();
  return avg_us;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Ablation: SegmentRing (whole writes) vs BlobGroup (8KB striping)");
  bench::PrintRow({"record size", "BlobGroup avg us", "SegmentRing avg us",
                   "speedup"},
                  20);
  for (size_t bytes : {2 * kKiB, 8 * kKiB, 32 * kKiB, 128 * kKiB,
                       256 * kKiB}) {
    const int ops = bytes >= 128 * kKiB ? 100 : 300;
    const double blob = RunAppends(false, bytes, ops);
    const double ring = RunAppends(true, bytes, ops);
    bench::PrintRow({std::to_string(bytes / kKiB) + "KB",
                     bench::Fmt("%.1f", blob), bench::Fmt("%.1f", ring),
                     bench::Fmt("%.1fx", blob / ring)},
                    20);
  }
  printf("\npaper: a 256KB one-sided write completes in ~0.1ms — no need "
         "to split large log I/Os\n");
  return 0;
}
