// Ablation: SegmentRing vs BlobGroup log-space management (Section V-A).
// The BlobGroup splits every append into fixed 8KB physical I/Os striped
// over four blobs; the SegmentRing writes each record whole. The paper
// calls out 256KB writes completing in ~0.1ms over one-sided RDMA — large
// writes are exactly where not splitting pays.

#include <cstdio>
#include <memory>
#include <vector>

#include "astore/client.h"
#include "astore/cluster_manager.h"
#include "astore/segment_ring.h"
#include "astore/server.h"
#include "bench/bench_util.h"
#include "common/histogram.h"
#include "logstore/logstore.h"
#include "workload/append_storm.h"

namespace vedb {
namespace {

double RunAppends(bool use_astore, size_t record_bytes, int ops) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(use_astore, 0);
  opts.astore_log.ring.segment_size = 4 * kMiB;
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  const std::string payload(record_bytes, 'r');
  Histogram latency;
  for (int i = 0; i < ops; ++i) {
    const Timestamp t0 = cluster.env()->clock()->Now();
    auto r = cluster.log()->AppendBatch({payload});
    if (!r.ok()) {
      fprintf(stderr, "append: %s\n", r.status().ToString().c_str());
      break;
    }
    latency.Add(cluster.env()->clock()->Now() - t0);
  }
  const double avg_us = latency.Average() / 1e3;
  cluster.env()->clock()->UnregisterActor();
  cluster.Shutdown();
  return avg_us;
}

struct StormStats {
  uint64_t appends = 0;
  uint64_t doorbells = 0;
  uint64_t coalesced = 0;
};

/// Fixed-size storm (same total appends regardless of client count) over a
/// bare AStore deployment, so doorbells-per-append isolates the coalescer.
StormStats RunStorm(int clients, int total_appends) {
  // The blob-vs-ring section above never snapshots, so its counters are
  // still in the global registry; zero them or they pollute this table.
  obs::MetricsRegistry::Default().ResetValues();
  sim::SimEnvironment env(2023);
  auto rpc = std::make_unique<net::RpcTransport>(&env);
  auto fabric = std::make_unique<net::RdmaFabric>(&env);
  sim::NodeConfig cm_cfg;
  cm_cfg.storage = sim::HardwareProfile::NvmeSsd(env.NextSeed());
  sim::SimNode* cm_node = env.AddNode("cm", cm_cfg);
  astore::ClusterManager cm(&env, rpc.get(), cm_node,
                            astore::ClusterManager::Options{});
  std::vector<std::unique_ptr<astore::AStoreServer>> servers;
  for (int i = 0; i < 3; ++i) {
    sim::NodeConfig cfg;
    cfg.cpu_cores = 32;
    cfg.storage = sim::HardwareProfile::OptanePmem(env.NextSeed());
    sim::SimNode* node = env.AddNode("pmem-" + std::to_string(i), cfg);
    astore::AStoreServer::Options sopts;
    sopts.pmem_capacity = 64 * kMiB;
    servers.push_back(std::make_unique<astore::AStoreServer>(
        &env, rpc.get(), fabric.get(), node, sopts));
    cm.RegisterServer(servers.back().get());
  }
  sim::NodeConfig dbe_cfg;
  dbe_cfg.cpu_cores = 16;
  dbe_cfg.storage = sim::HardwareProfile::NvmeSsd(env.NextSeed());
  sim::SimNode* dbe = env.AddNode("dbe", dbe_cfg);
  // A short nagle window lets each flush leader linger long enough to pick
  // up the other clients' submissions instead of alternating solo posts.
  astore::AStoreClient::Options copts;
  copts.append_ring.nagle_window = 2 * kMicrosecond;
  astore::AStoreClient client(&env, rpc.get(), fabric.get(), cm_node, dbe,
                              /*client_id=*/1, copts);

  env.clock()->RegisterActor();
  Status st = client.Connect();
  if (!st.ok()) fprintf(stderr, "connect: %s\n", st.ToString().c_str());
  astore::SegmentRing::Options ropts;
  ropts.segment_size = 1 * kMiB;
  ropts.ring_size = 8;
  auto ring = astore::SegmentRing::Create(&client, ropts);
  if (!ring.ok()) {
    fprintf(stderr, "ring: %s\n", ring.status().ToString().c_str());
    env.clock()->UnregisterActor();
    return {};
  }
  env.clock()->UnregisterActor();

  workload::AppendStormOptions sopts;
  sopts.clients = clients;
  sopts.appends_per_client = total_appends / clients;
  sopts.payload_bytes = 1 * kKiB;
  auto storm = workload::RunAppendStorm(&env, ring.value().get(), sopts);
  StormStats stats;
  if (!storm.ok()) {
    fprintf(stderr, "storm: %s\n", storm.status().ToString().c_str());
    return stats;
  }
  stats.appends = storm->appended;
  obs::Snapshot snap = bench::CollectRunSnapshot(
      &env, "storm/" + std::to_string(clients));
  if (const auto* db = snap.FindCounter("ring.doorbells")) {
    stats.doorbells = db->value;
  }
  if (const auto* co =
          snap.FindCounter("astore.client.coalesced_appends")) {
    stats.coalesced = co->value;
  }
  return stats;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Ablation: SegmentRing (whole writes) vs BlobGroup (8KB striping)");
  bench::PrintRow({"record size", "BlobGroup avg us", "SegmentRing avg us",
                   "speedup"},
                  20);
  for (size_t bytes : {2 * kKiB, 8 * kKiB, 32 * kKiB, 128 * kKiB,
                       256 * kKiB}) {
    const int ops = bytes >= 128 * kKiB ? 100 : 300;
    const double blob = RunAppends(false, bytes, ops);
    const double ring = RunAppends(true, bytes, ops);
    bench::PrintRow({std::to_string(bytes / kKiB) + "KB",
                     bench::Fmt("%.1f", blob), bench::Fmt("%.1f", ring),
                     bench::Fmt("%.1fx", blob / ring)},
                    20);
  }
  printf("\npaper: a 256KB one-sided write completes in ~0.1ms — no need "
         "to split large log I/Os\n");

  // Cross-client doorbell coalescing: the same 128 appends from more
  // clients means more records per doorbell, not more doorbells — the
  // ring amortizes one doorbell_cost across every record it drains.
  bench::PrintHeader("Ablation: doorbell coalescing across clients");
  bench::PrintRow({"clients", "appends", "doorbells", "doorbells/append",
                   "coalesced"},
                  18);
  for (int clients : {1, 8, 64}) {
    const StormStats stats = RunStorm(clients, 128);
    bench::PrintRow(
        {std::to_string(clients), std::to_string(stats.appends),
         std::to_string(stats.doorbells),
         bench::Fmt("%.2f", stats.appends == 0
                                ? 0.0
                                : static_cast<double>(stats.doorbells) /
                                      static_cast<double>(stats.appends)),
         std::to_string(stats.coalesced)},
        18);
  }
  return 0;
}
