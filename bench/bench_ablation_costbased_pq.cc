// Ablation: push-down decision policies (Section VI-A calls the shipped
// row-count threshold temporary, naming cost-based optimization as future
// work — implemented here). Three policies over a mixed query set:
//   threshold — push everything above the row threshold (shipped heuristic)
//   always    — push every eligible fragment
//   cost      — residency-aware cost model (keeps buffer-pool-resident
//               tables local, pushes storage-heavy scans)

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "query/pushdown.h"
#include "workload/tpcc.h"
#include "workload/tpcch.h"

namespace vedb {
namespace {

struct Rig {
  std::unique_ptr<workload::VedbCluster> cluster;
  std::unique_ptr<workload::TpccDatabase> db;
  std::unique_ptr<query::PushdownRuntime> pushdown;
};

Rig MakeRig() {
  Rig rig;
  workload::ClusterOptions opts = bench::MakeClusterOptions(true, 128 * kMiB);
  opts.engine.buffer_pool.capacity_pages = 160;
  rig.cluster = std::make_unique<workload::VedbCluster>(opts);
  std::vector<sim::SimNode*> ps_nodes;
  for (int i = 0; i < opts.pagestore_nodes; ++i) {
    ps_nodes.push_back(rig.cluster->env()->GetNode("ps-" +
                                                   std::to_string(i)));
  }
  rig.pushdown = std::make_unique<query::PushdownRuntime>(
      rig.cluster->env(), rig.cluster->rpc(), rig.cluster->pagestore(),
      ps_nodes, rig.cluster->astore_servers(),
      query::PushdownRuntime::Options{});
  rig.pushdown->AttachEbp(rig.cluster->ebp());
  rig.cluster->StartBackground();
  rig.cluster->env()->clock()->RegisterActor();

  workload::TpccScale scale;
  scale.warehouses = 4;
  scale.customers_per_district = 60;
  scale.items = 400;
  scale.initial_orders_per_district = 30;
  rig.db = std::make_unique<workload::TpccDatabase>(rig.cluster->engine(),
                                                    scale, 8, true);
  Status s = rig.db->Load();
  if (!s.ok()) fprintf(stderr, "load: %s\n", s.ToString().c_str());
  return rig;
}

enum class Policy { kThreshold, kAlways, kCost };

double RunQuerySet(Rig* rig, Policy policy) {
  // A mix of small-table-heavy and scan-heavy queries: Q2/Q16 (stock x
  // item/supplier, mostly resident after warm-up) and Q1/Q6/Q22 (large
  // scans). A good policy keeps the former local and pushes the latter.
  const int queries[] = {2, 16, 1, 6, 22};
  auto ctx_for = [&]() {
    query::ExecContext ctx;
    ctx.engine = rig->cluster->engine();
    ctx.pushdown = rig->pushdown.get();
    ctx.enable_pushdown = true;
    switch (policy) {
      case Policy::kThreshold:
        ctx.pushdown_row_threshold = 2000;
        break;
      case Policy::kAlways:
        ctx.pushdown_row_threshold = 1;
        break;
      case Policy::kCost:
        ctx.cost_based_pushdown = true;
        break;
    }
    return ctx;
  };
  // Warm-up pass, then two timed passes.
  for (int q : queries) {
    query::ExecContext ctx = ctx_for();
    // discard-ok: timed run; per-query failures would show up as zeros.
    (void)workload::RunChQuery(q, rig->db.get(), &ctx, true);
  }
  const Timestamp t0 = rig->cluster->env()->clock()->Now();
  for (int pass = 0; pass < 2; ++pass) {
    for (int q : queries) {
      query::ExecContext ctx = ctx_for();
      auto r = workload::RunChQuery(q, rig->db.get(), &ctx, true);
      if (!r.ok()) {
        fprintf(stderr, "Q%d: %s\n", q, r.status().ToString().c_str());
      }
    }
  }
  return ToMillis(rig->cluster->env()->clock()->Now() - t0) / 2;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  Rig rig = MakeRig();
  bench::PrintHeader(
      "Ablation: push-down decision policy (mixed CH query set, total ms "
      "per pass)");
  bench::PrintRow({"policy", "total (ms)"}, 22);
  const double threshold = RunQuerySet(&rig, Policy::kThreshold);
  bench::PrintRow({"row threshold", bench::Fmt("%.1f", threshold)}, 22);
  const double always = RunQuerySet(&rig, Policy::kAlways);
  bench::PrintRow({"always push", bench::Fmt("%.1f", always)}, 22);
  const double cost = RunQuerySet(&rig, Policy::kCost);
  bench::PrintRow({"cost based", bench::Fmt("%.1f", cost)}, 22);
  printf("\nthe cost model keeps resident small-table scans local and "
         "pushes storage-heavy fragments (paper future work, implemented)\n");
  rig.cluster->env()->clock()->UnregisterActor();
  rig.cluster->Shutdown();
  return 0;
}
