// Figure 9 reproduction: the advertisement data library. The production
// workload is duplicated and driven against a stock veDB and a veDB with
// AStore; the paper reports ~20x lower average latency (most queries finish
// in ~5ms vs ~150ms P99 before) and worst case dropping from ~500ms to
// ~20ms.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/internal.h"

namespace vedb {
namespace {

struct AdResult {
  double avg_ms;
  double p99_ms;
  double max_ms;
};

AdResult RunAds(bool use_astore) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(use_astore, 0);
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  workload::AdvertisementWorkload workload(
      cluster.engine(), workload::AdvertisementWorkload::Options{}, 31);
  Status s = workload.Load();
  if (!s.ok()) fprintf(stderr, "load: %s\n", s.ToString().c_str());

  const int kClients = 24;  // the latency-sensitive online path
  std::vector<Random> rngs;
  for (int i = 0; i < kClients; ++i) rngs.emplace_back(900 + i);

  cluster.env()->clock()->UnregisterActor();
  workload::LoadResult result = workload::RunClosedLoop(
      cluster.env(), kClients, 100 * kMillisecond, 800 * kMillisecond,
      [&](int c) { return workload.RunQuery(&rngs[c]); });

  AdResult out;
  out.avg_ms = result.latency.Average() / 1e6;
  out.p99_ms = result.latency.P99() / 1e6;
  out.max_ms = result.latency.max() / 1e6;
  cluster.Shutdown();
  return out;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  AdResult stock = RunAds(false);
  AdResult astore = RunAds(true);

  bench::PrintHeader(
      "Figure 9: advertisement library latency (duplicated workload)");
  bench::PrintRow({"", "avg (ms)", "P99 (ms)", "max (ms)"});
  bench::PrintRow({"veDB (stock)", bench::Fmt("%.2f", stock.avg_ms),
                   bench::Fmt("%.2f", stock.p99_ms),
                   bench::Fmt("%.2f", stock.max_ms)});
  bench::PrintRow({"veDB+AStore", bench::Fmt("%.2f", astore.avg_ms),
                   bench::Fmt("%.2f", astore.p99_ms),
                   bench::Fmt("%.2f", astore.max_ms)});
  printf("\naverage speedup: %.1fx (paper: ~20x); worst case %.1fx "
         "(paper: ~500ms -> ~20ms)\n",
         stock.avg_ms / astore.avg_ms, stock.max_ms / astore.max_ms);
  return 0;
}
