// Figure 13 / Table III reproduction: sysbench QPS improvement of
// veDB+AStore(+EBP) over stock veDB at roughly equal hardware cost. PMem
// costs about a third of DRAM per GB, so each configuration trades XGB of
// DRAM buffer pool for a 3XGB EBP. Paper: substantial gains below 64
// clients; the improvement shrinks as concurrency grows and vanishes by 256
// clients (EBP index lock contention + maintenance overheads).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/internal.h"

namespace vedb {
namespace {

// Table III scaled: {stock BP pages, AStore BP pages, EBP bytes}. The
// DRAM reduction X (in pages) funds a 3X-page EBP.
struct Deployment {
  const char* name;
  size_t stock_bp_pages;
  size_t astore_bp_pages;
  uint64_t ebp_bytes;
};
const Deployment kDeployments[] = {
    {"32c/100G-like", 384, 160, 672ull * 16 * kKiB},
    {"16c/40G-like", 160, 80, 240ull * 16 * kKiB},
    {"8c/20G-like", 80, 40, 120ull * 16 * kKiB},
};

double RunSysbench(bool astore_with_ebp, const Deployment& dep,
                   int clients) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(
      /*astore_log=*/astore_with_ebp, astore_with_ebp ? dep.ebp_bytes : 0);
  opts.engine.buffer_pool.capacity_pages =
      astore_with_ebp ? dep.astore_bp_pages : dep.stock_bp_pages;
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  workload::SysbenchWorkload::Options wopts;
  wopts.rows = 30000;
  workload::SysbenchWorkload workload(cluster.engine(), wopts, 13);
  Status s = workload.Load();
  if (!s.ok()) fprintf(stderr, "load: %s\n", s.ToString().c_str());

  std::vector<Random> rngs;
  for (int i = 0; i < clients; ++i) rngs.emplace_back(40 + i);
  std::atomic<uint64_t> queries{0};

  cluster.env()->clock()->UnregisterActor();
  workload::LoadResult result = workload::RunClosedLoop(
      cluster.env(), clients, 100 * kMillisecond, 500 * kMillisecond,
      [&](int c) {
        int q = 0;
        Status st = workload.RunTransaction(&rngs[c], &q);
        if (st.ok()) queries.fetch_add(q);
        return st;
      });
  const double qps =
      static_cast<double>(queries.load()) /
      (static_cast<double>(result.elapsed) / kSecond);
  cluster.Shutdown();
  return qps;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Figure 13: sysbench QPS improvement at equal hardware cost "
      "(veDB+AStore+EBP vs stock veDB)");
  for (const auto& dep : kDeployments) {
    printf("\ndeployment %s (BP %zu -> %zu pages + EBP):\n", dep.name,
           dep.stock_bp_pages, dep.astore_bp_pages);
    bench::PrintRow({"clients", "stock QPS", "AStore+EBP QPS",
                     "improvement"});
    for (int clients : {8, 32, 96}) {
      const double stock = RunSysbench(false, dep, clients);
      const double astore = RunSysbench(true, dep, clients);
      bench::PrintRow(
          {std::to_string(clients), bench::Fmt("%.0f", stock),
           bench::Fmt("%.0f", astore),
           bench::Fmt("%+.0f%%", 100.0 * (astore / stock - 1))});
    }
  }
  printf("\npaper: large gains under 64 clients; improvement diminishes "
         "with concurrency (EBP index lock) and vanishes at 256\n");
  return 0;
}
