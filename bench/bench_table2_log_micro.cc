// Table II reproduction: single-threaded 4KB log-write micro-benchmark
// against the SSD-based LogStore (BlobGroup path) and the PMem-based AStore
// (SegmentRing path). Paper: 0.638ms vs 0.086ms average write latency
// (~7x), 1,527 vs 11,465 IOPS, 5.97 vs 44.79 MB/s.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "logstore/logstore.h"
#include "sim/clock.h"

namespace vedb {
namespace {

struct MicroResult {
  double avg_latency_ms;
  double iops;
  double bandwidth_mb_s;
  double p99_ms;
};

MicroResult RunLogMicro(bool use_astore, int ops) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(use_astore, 0);
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  const std::string payload(4 * kKiB, 'L');
  Histogram latency;
  const Timestamp t0 = cluster.env()->clock()->Now();
  for (int i = 0; i < ops; ++i) {
    const Timestamp begin = cluster.env()->clock()->Now();
    auto r = cluster.log()->AppendBatch({payload});
    if (!r.ok()) {
      fprintf(stderr, "append failed: %s\n", r.status().ToString().c_str());
      break;
    }
    latency.Add(cluster.env()->clock()->Now() - begin);
  }
  const Duration elapsed = cluster.env()->clock()->Now() - t0;

  MicroResult result;
  result.avg_latency_ms = latency.Average() / 1e6;
  result.iops = ops / (static_cast<double>(elapsed) / kSecond);
  result.bandwidth_mb_s = result.iops * 4096 / 1e6;
  result.p99_ms = latency.P99() / 1e6;

  cluster.env()->clock()->UnregisterActor();
  cluster.Shutdown();
  return result;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  const int kOps = 2000;
  MicroResult ssd = RunLogMicro(/*use_astore=*/false, kOps);
  MicroResult pmem = RunLogMicro(/*use_astore=*/true, kOps);

  bench::PrintHeader(
      "Table II: log writing micro-benchmark (4KB, single thread)");
  bench::PrintRow({"", "Avg Write Lat (ms)", "Avg IOPS", "Avg BW (MB/s)",
                   "P99 Lat (ms)"},
                  20);
  bench::PrintRow({"W/O PMem", bench::Fmt("%.3f", ssd.avg_latency_ms),
                   bench::Fmt("%.0f", ssd.iops),
                   bench::Fmt("%.2f", ssd.bandwidth_mb_s),
                   bench::Fmt("%.3f", ssd.p99_ms)},
                  20);
  bench::PrintRow({"W/ PMem", bench::Fmt("%.3f", pmem.avg_latency_ms),
                   bench::Fmt("%.0f", pmem.iops),
                   bench::Fmt("%.2f", pmem.bandwidth_mb_s),
                   bench::Fmt("%.3f", pmem.p99_ms)},
                  20);
  printf("\nPaper reference: 0.638 -> 0.086 ms, 1527 -> 11465 IOPS, "
         "5.97 -> 44.79 MB/s (~7x).\n");
  printf("Improvement here: %.1fx latency, %.1fx IOPS, %.1fx bandwidth\n",
         ssd.avg_latency_ms / pmem.avg_latency_ms, pmem.iops / ssd.iops,
         pmem.bandwidth_mb_s / ssd.bandwidth_mb_s);
  return 0;
}
