// Table II reproduction: single-threaded 4KB log-write micro-benchmark
// against the SSD-based LogStore (BlobGroup path) and the PMem-based AStore
// (SegmentRing path). Paper: 0.638ms vs 0.086ms average write latency
// (~7x), 1,527 vs 11,465 IOPS, 5.97 vs 44.79 MB/s.
//
// Latency numbers are reported from the metrics registry (the
// logstore.append_ns histogram the LogStore itself records), and the whole
// run is exported as results/bench_table2_log_micro.json: one registry
// snapshot per backend plus a traced single AStore write whose
// client/network/server/pmem-flush child spans reproduce the paper's
// Table 2 latency breakdown.
//
// Usage: bench_table2_log_micro [ops]   (default 2000; CI runs it short)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "logstore/logstore.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace vedb {
namespace {

struct MicroResult {
  double avg_latency_ms = 0;
  double iops = 0;
  double bandwidth_mb_s = 0;
  double p99_ms = 0;
  obs::Snapshot snapshot;
  // Only set for the AStore run: JSON object with the per-stage ns of one
  // traced log write, and the full span dump.
  std::string breakdown_json;
  std::string trace_json;
  uint64_t client_ns = 0;
  uint64_t total_ns = 0;
  uint64_t ring_doorbells = 0;
  uint64_t coalesced_appends = 0;
};

/// Extracts the Table 2 breakdown from a finished trace: the
/// astore.client.write span and its four breakdown.* children.
std::string BreakdownJson(const std::vector<obs::Span>& spans,
                          uint64_t* client_ns, uint64_t* total_ns) {
  const obs::Span* root = nullptr;
  for (const auto& s : spans) {
    if (s.name == "astore.client.write") {
      root = &s;
      break;
    }
  }
  if (root == nullptr) return "null";
  unsigned long long comp[4] = {0, 0, 0, 0};
  const char* names[4] = {"breakdown.client", "breakdown.network",
                          "breakdown.server", "breakdown.pmem_flush"};
  for (const auto& s : spans) {
    if (s.trace_id != root->trace_id || s.parent_id != root->id) continue;
    for (int i = 0; i < 4; ++i) {
      if (s.name == names[i]) comp[i] = s.duration();
    }
  }
  char buf[256];
  snprintf(buf, sizeof(buf),
           "{\"client_ns\":%llu,\"network_ns\":%llu,\"server_ns\":%llu,"
           "\"pmem_flush_ns\":%llu,\"total_ns\":%llu}",
           comp[0], comp[1], comp[2], comp[3],
           static_cast<unsigned long long>(root->duration()));
  *client_ns = comp[0];
  *total_ns = root->duration();
  return buf;
}

MicroResult RunLogMicro(bool use_astore, int ops) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(use_astore, 0);
  workload::VedbCluster cluster(opts);
  // Register main before any background actors exist: a registered main
  // holds the run token from the first tick, so the setup phase advances
  // virtual time identically on every run (a guest main would interleave
  // with actors in real time).
  cluster.env()->clock()->RegisterActor();
  cluster.StartBackground();

  const std::string payload(4 * kKiB, 'L');
  const Timestamp t0 = cluster.env()->clock()->Now();
  for (int i = 0; i < ops; ++i) {
    auto r = cluster.log()->AppendBatch({payload});
    if (!r.ok()) {
      fprintf(stderr, "append failed: %s\n", r.status().ToString().c_str());
      break;
    }
  }
  const Duration elapsed = cluster.env()->clock()->Now() - t0;

  MicroResult result;
  result.snapshot = bench::CollectRunSnapshot(
      cluster.env(), use_astore ? "table2/pmem" : "table2/ssd");
  const auto* lat = result.snapshot.FindHistogram(
      "logstore.append_ns", {{"backend", use_astore ? "pmem" : "ssd"}});
  result.avg_latency_ms = bench::AvgMs(lat);
  result.p99_ms = bench::P99Ms(lat);
  result.iops = ops / (static_cast<double>(elapsed) / kSecond);
  result.bandwidth_mb_s = result.iops * 4096 / 1e6;

  if (use_astore) {
    // One more write with tracing on: the span tree is the paper's Table 2
    // latency breakdown. Tracing never advances the virtual clock, so this
    // does not perturb the measured run above (whose metrics were already
    // snapshotted), and the traced write's own metrics are discarded.
    obs::Tracer tracer(cluster.env()->clock());
    obs::Tracer::SetGlobal(&tracer);
    auto r = cluster.log()->AppendBatch({payload});
    obs::Tracer::SetGlobal(nullptr);
    if (r.ok()) {
      result.breakdown_json = BreakdownJson(
          tracer.FinishedSpans(), &result.client_ns, &result.total_ns);
      result.trace_json = tracer.ToJson();
    }
    if (const auto* db = result.snapshot.FindCounter("ring.doorbells")) {
      result.ring_doorbells = db->value;
    }
    if (const auto* co =
            result.snapshot.FindCounter("astore.client.coalesced_appends")) {
      result.coalesced_appends = co->value;
    }
    obs::MetricsRegistry::Default().ResetValues();
  }

  // Shut down while still registered so teardown runs under the run token
  // (deterministic) instead of racing a guest main.
  cluster.Shutdown();
  cluster.env()->clock()->UnregisterActor();
  return result;
}

}  // namespace
}  // namespace vedb

int main(int argc, char** argv) {
  using namespace vedb;
  const int ops = bench::ArgInt(argc, argv, 2000);
  MicroResult ssd = RunLogMicro(/*use_astore=*/false, ops);
  MicroResult pmem = RunLogMicro(/*use_astore=*/true, ops);

  bench::PrintHeader(
      "Table II: log writing micro-benchmark (4KB, single thread)");
  bench::PrintRow({"", "Avg Write Lat (ms)", "Avg IOPS", "Avg BW (MB/s)",
                   "P99 Lat (ms)"},
                  20);
  bench::PrintRow({"W/O PMem", bench::Fmt("%.3f", ssd.avg_latency_ms),
                   bench::Fmt("%.0f", ssd.iops),
                   bench::Fmt("%.2f", ssd.bandwidth_mb_s),
                   bench::Fmt("%.3f", ssd.p99_ms)},
                  20);
  bench::PrintRow({"W/ PMem", bench::Fmt("%.3f", pmem.avg_latency_ms),
                   bench::Fmt("%.0f", pmem.iops),
                   bench::Fmt("%.2f", pmem.bandwidth_mb_s),
                   bench::Fmt("%.3f", pmem.p99_ms)},
                  20);
  printf("\nPaper reference: 0.638 -> 0.086 ms, 1527 -> 11465 IOPS, "
         "5.97 -> 44.79 MB/s (~7x).\n");
  printf("Improvement here: %.1fx latency, %.1fx IOPS, %.1fx bandwidth\n",
         ssd.avg_latency_ms / pmem.avg_latency_ms, pmem.iops / ssd.iops,
         pmem.bandwidth_mb_s / ssd.bandwidth_mb_s);
  printf("Traced AStore write breakdown: %s\n", pmem.breakdown_json.c_str());

  // Hot-path gate: before the packed-frame/doorbell rework the client stage
  // dominated the traced write at 724 per-mille of total
  // ({"client_ns":55300,...,"total_ns":76371}); the async ring must keep it
  // at or below 350 per-mille or this bench fails the run.
  const uint64_t client_share_pm =
      pmem.total_ns == 0 ? 1000 : pmem.client_ns * 1000 / pmem.total_ns;
  const bool breakdown_pass = client_share_pm <= 350;
  printf("client share: %llu/1000 of traced write (baseline 724, gate 350) "
         "-> %s\n",
         static_cast<unsigned long long>(client_share_pm),
         breakdown_pass ? "PASS" : "FAIL");
  printf("doorbells: %llu (%llu appends coalesced into multi-record "
         "doorbells)\n",
         static_cast<unsigned long long>(pmem.ring_doorbells),
         static_cast<unsigned long long>(pmem.coalesced_appends));

  Status wrote = bench::WriteBenchResults(
      "bench_table2_log_micro", "bench_table2_log_micro.json",
      {ssd.snapshot, pmem.snapshot},
      {"\"ops\":" + std::to_string(ops),
       "\"breakdown\":" +
           (pmem.breakdown_json.empty() ? "null" : pmem.breakdown_json),
       "\"client_share_pm\":" + std::to_string(client_share_pm),
       "\"breakdown_pass\":" + std::string(breakdown_pass ? "true" : "false"),
       "\"ring_doorbells\":" + std::to_string(pmem.ring_doorbells),
       "\"coalesced_appends\":" + std::to_string(pmem.coalesced_appends),
       "\"trace_spans\":" +
           (pmem.trace_json.empty() ? "[]" : pmem.trace_json)});
  if (!wrote.ok()) {
    fprintf(stderr, "results export failed: %s\n", wrote.ToString().c_str());
    return 1;
  }
  printf("metrics snapshot: results/bench_table2_log_micro.json\n");
  return breakdown_pass ? 0 : 2;
}
