// Ablation: EBP capacity policies (Sections V-C, VI-B). Under the flat
// policy every evicted page competes equally, so a churning workload evicts
// the pages consecutive push-down queries need; the priority policy
// reserves high-priority space for the push-down tables. Also sweeps the
// LRU shard count, whose lock the paper blames for high-concurrency
// degradation.

#include <cstdio>

#include "astore/client.h"
#include "astore/cluster_manager.h"
#include "astore/server.h"
#include "bench/bench_util.h"
#include "ebp/ebp.h"
#include "sim/clock.h"

namespace vedb {
namespace {

// Harness: an EBP over a 3-node AStore, driven directly (no engine), so the
// policy effect is isolated.
struct EbpRig {
  sim::SimEnvironment env{123};
  std::unique_ptr<net::RpcTransport> rpc;
  std::unique_ptr<net::RdmaFabric> fabric;
  sim::SimNode* cm_node;
  std::unique_ptr<astore::ClusterManager> cm;
  std::vector<std::unique_ptr<astore::AStoreServer>> servers;
  std::unique_ptr<astore::AStoreClient> client;
  std::unique_ptr<ebp::ExtendedBufferPool> pool;

  explicit EbpRig(const ebp::ExtendedBufferPool::Options& opts) {
    rpc = std::make_unique<net::RpcTransport>(&env);
    fabric = std::make_unique<net::RdmaFabric>(&env);
    sim::NodeConfig cm_cfg;
    cm_cfg.storage = sim::HardwareProfile::NvmeSsd(env.NextSeed());
    cm_node = env.AddNode("cm", cm_cfg);
    cm = std::make_unique<astore::ClusterManager>(
        &env, rpc.get(), cm_node, astore::ClusterManager::Options{});
    for (int i = 0; i < 3; ++i) {
      sim::NodeConfig cfg;
      cfg.cpu_cores = 32;
      cfg.storage = sim::HardwareProfile::OptanePmem(env.NextSeed());
      astore::AStoreServer::Options sopts;
      sopts.pmem_capacity = 128 * kMiB;
      servers.push_back(std::make_unique<astore::AStoreServer>(
          &env, rpc.get(), fabric.get(),
          env.AddNode("pmem-" + std::to_string(i), cfg), sopts));
      cm->RegisterServer(servers.back().get());
    }
    sim::NodeConfig dbe_cfg;
    dbe_cfg.cpu_cores = 20;
    dbe_cfg.storage = sim::HardwareProfile::NvmeSsd(env.NextSeed());
    client = std::make_unique<astore::AStoreClient>(
        &env, rpc.get(), fabric.get(), cm_node, env.AddNode("dbe", dbe_cfg),
        1, astore::AStoreClient::Options{});
    env.clock()->RegisterActor();
    // discard-ok: the sim CM is always reachable during setup.
    (void)client->Connect();
    pool = std::make_unique<ebp::ExtendedBufferPool>(&env, client.get(),
                                                     opts);
  }
  ~EbpRig() { env.clock()->UnregisterActor(); }
};

/// Simulates consecutive push-down queries over a hot table (pages 0..N)
/// while an OLTP churn keeps evicting pages of other tables into the EBP.
/// Returns the hit rate the "queries" see on the hot table.
double RunPolicy(ebp::ExtendedBufferPool::Policy policy, int lru_shards) {
  ebp::ExtendedBufferPool::Options opts;
  opts.capacity = 4 * kMiB;  // ~250 pages
  opts.policy = policy;
  opts.lru_shards = lru_shards;
  EbpRig rig(opts);

  const std::string hot_image(16 * kKiB, 'H');
  const std::string churn_image(16 * kKiB, 'c');
  const int kHotPages = 60;

  // The push-down table's pages are cached at high priority.
  for (int p = 0; p < kHotPages; ++p) {
    // discard-ok: cache warm-up; a failed put only skews the baseline.
    (void)rig.pool->PutPage(1000000 + p, 1, Slice(hot_image), /*priority=*/3);
  }
  uint64_t hits = 0, probes = 0;
  Random rng(9);
  for (int round = 0; round < 20; ++round) {
    // OLTP churn: low-priority evictions flood the EBP.
    for (int i = 0; i < 40; ++i) {
      // discard-ok: churn traffic; NoSpace is the expected steady state.
      (void)rig.pool->PutPage(rng.Uniform(100000), 1, Slice(churn_image),
                              /*priority=*/0);
    }
    // The next push-down query probes the hot table.
    for (int p = 0; p < kHotPages; ++p) {
      std::string image;
      probes++;
      if (rig.pool->GetPage(1000000 + p, &image, nullptr).ok()) hits++;
    }
  }
  return 100.0 * hits / probes;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Ablation: EBP policy under OLTP churn + consecutive push-down "
      "queries");
  bench::PrintRow({"policy", "hot-table hit rate"}, 24);
  const double flat = RunPolicy(ebp::ExtendedBufferPool::Policy::kFlat, 8);
  const double prio =
      RunPolicy(ebp::ExtendedBufferPool::Policy::kPriority, 8);
  bench::PrintRow({"flat", bench::Fmt("%.1f%%", flat)}, 24);
  bench::PrintRow({"priority", bench::Fmt("%.1f%%", prio)}, 24);
  printf("\npaper: \"the priority strategy is better for supporting "
         "push-down queries\" — flat lets churn evict the warm pages\n");

  bench::PrintHeader("Ablation: EBP LRU shard count (index contention)");
  bench::PrintRow({"shards", "hot hit rate (sanity)"}, 24);
  for (int shards : {1, 2, 8, 32}) {
    bench::PrintRow(
        {std::to_string(shards),
         bench::Fmt("%.1f%%",
                    RunPolicy(ebp::ExtendedBufferPool::Policy::kPriority,
                              shards))},
        24);
  }
  return 0;
}
