// Figure 12 reproduction: the effect of EBP size on the internal operations
// database (huge table, PK lookups, ~95% buffer-pool hit rate). Paper: a
// modest 256GB EBP cuts average response time 45% and P99 >50%; each
// doubling helps about half as much as the previous one (diminishing
// returns once everything cacheable is cached).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/internal.h"

namespace vedb {
namespace {

struct OpsResult {
  double avg_us;
  double p99_us;
};

OpsResult RunOps(uint64_t ebp_capacity) {
  workload::ClusterOptions opts =
      bench::MakeClusterOptions(true, ebp_capacity);
  // BP holds a few percent of the table: the paper's ~95% hit regime comes
  // from the skewed key distribution over a small resident hot set.
  opts.engine.buffer_pool.capacity_pages = 96;
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  workload::OperationsWorkload::Options wopts;
  wopts.rows = 50000;
  wopts.row_bytes = 220;
  workload::OperationsWorkload workload(cluster.engine(), wopts, 21);
  Status s = workload.Load();
  if (!s.ok()) fprintf(stderr, "load: %s\n", s.ToString().c_str());

  const int kClients = 16;
  std::vector<Random> rngs;
  for (int i = 0; i < kClients; ++i) rngs.emplace_back(300 + i);

  cluster.env()->clock()->UnregisterActor();
  workload::LoadResult result = workload::RunClosedLoop(
      cluster.env(), kClients, 200 * kMillisecond, 800 * kMillisecond,
      [&](int c) { return workload.RunLookup(&rngs[c]); });

  OpsResult out;
  out.avg_us = result.latency.Average() / 1e3;
  out.p99_us = result.latency.P99() / 1e3;
  cluster.Shutdown();
  return out;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Figure 12: operations DB latency vs EBP size (PK lookups)");
  bench::PrintRow({"EBP size", "avg (us)", "P99 (us)", "avg reduction"});
  const OpsResult base = RunOps(0);
  bench::PrintRow({"disabled", bench::Fmt("%.1f", base.avg_us),
                   bench::Fmt("%.1f", base.p99_us), "-"});
  for (uint64_t mb : {2, 4, 8, 32}) {
    const OpsResult r = RunOps(mb * kMiB);
    bench::PrintRow({std::to_string(mb) + "MiB",
                     bench::Fmt("%.1f", r.avg_us),
                     bench::Fmt("%.1f", r.p99_us),
                     bench::Fmt("%.0f%%", 100.0 * (1 - r.avg_us /
                                                           base.avg_us))});
  }
  printf("\npaper: 256GB EBP -> avg -45%%, P99 -50%%; diminishing returns "
         "with each doubling\n");
  return 0;
}
