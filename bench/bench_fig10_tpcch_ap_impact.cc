// Figure 10 reproduction: impact of analytical (AP) query streams on TPC-CH
// transaction throughput, with and without the extended buffer pool.
// Paper (1000 warehouses, 32 TP clients): one AP stream costs ~5% TP
// throughput, eight AP streams ~30%; enabling the EBP consistently recovers
// throughput.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpcch.h"

namespace vedb {
namespace {

double RunMixedLoad(bool enable_ebp, int ap_clients) {
  workload::ClusterOptions opts =
      bench::MakeClusterOptions(true, enable_ebp ? 96 * kMiB : 0);
  // A buffer pool small enough that AP scans evict the TP working set.
  opts.engine.buffer_pool.capacity_pages = 64;
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  workload::TpccScale scale;
  scale.warehouses = 4;
  scale.customers_per_district = 60;
  scale.items = 400;
  scale.initial_orders_per_district = 60;
  workload::TpccDatabase db(cluster.engine(), scale, 3, /*ch=*/true);
  Status s = db.Load();
  if (!s.ok()) fprintf(stderr, "load: %s\n", s.ToString().c_str());

  const int kTpClients = 16;
  std::vector<std::unique_ptr<workload::TpccDriver>> drivers;
  for (int i = 0; i < kTpClients; ++i) {
    drivers.push_back(std::make_unique<workload::TpccDriver>(&db, 70 + i));
  }
  std::vector<Random> ap_rngs;
  for (int i = 0; i < ap_clients; ++i) ap_rngs.emplace_back(7000 + i);

  // TP clients and AP streams run together; only TP operations count
  // toward throughput.
  std::atomic<uint64_t> ap_ops{0};
  workload::LoadResult result = workload::RunClosedLoop(
      cluster.env(), kTpClients + ap_clients, 100 * kMillisecond,
      600 * kMillisecond, [&](int c) -> Status {
        if (c < kTpClients) {
          return drivers[c]->RunMixed(nullptr);
        }
        // An AP stream: CH queries back to back (no push-down here; Figure
        // 10 isolates the EBP effect).
        query::ExecContext ctx;
        ctx.engine = cluster.engine();
        const int q = 1 + static_cast<int>(
                              ap_rngs[c - kTpClients].Uniform(22));
        Status s = workload::RunChQuery(q, &db, &ctx, false).status();
        if (s.ok()) ap_ops.fetch_add(1);
        return s;
      });
  const double tps =
      static_cast<double>(result.operations - ap_ops.load()) /
      (static_cast<double>(result.elapsed) / kSecond);
  cluster.env()->clock()->UnregisterActor();
  cluster.Shutdown();
  return tps;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  bench::PrintHeader(
      "Figure 10: TP throughput under AP streams (TPC-CH), EBP off/on");
  bench::PrintRow({"AP streams", "TP tps (no EBP)", "TP tps (EBP)",
                   "EBP gain"});
  double base_no_ebp = 0;
  for (int ap : {0, 1, 8}) {
    const double no_ebp = RunMixedLoad(false, ap);
    const double with_ebp = RunMixedLoad(true, ap);
    if (ap == 0) base_no_ebp = no_ebp;
    bench::PrintRow({std::to_string(ap), bench::Fmt("%.0f", no_ebp),
                     bench::Fmt("%.0f", with_ebp),
                     bench::Fmt("%+.0f%%", 100.0 * (with_ebp / no_ebp - 1))});
    if (ap > 0 && base_no_ebp > 0) {
      printf("  TP loss vs 0 AP streams (no EBP): %.0f%%  (paper: 1 AP ~5%%, "
             "8 AP ~30%%)\n",
             100.0 * (1 - no_ebp / base_no_ebp));
    }
  }
  return 0;
}
