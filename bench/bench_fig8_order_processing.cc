// Figure 8 reproduction: the internal batched order-processing workload.
// Paper: single insert reaches 10k+ TPS with 8 clients on AStore vs 3,339
// TPS without (>3x); the full order transaction reaches 10k TPS at 64
// clients with AStore but needs >512 clients without.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/internal.h"

namespace vedb {
namespace {

double RunOrders(bool use_astore, int clients, bool single_insert) {
  workload::ClusterOptions opts = bench::MakeClusterOptions(use_astore, 0);
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  workload::OrderProcessingWorkload::Options wopts;
  wopts.merchants = 8;  // hot rows: many clients per merchant
  wopts.orders_per_txn = 4;
  wopts.order_bytes = 2048;
  workload::OrderProcessingWorkload workload(cluster.engine(), wopts, 11);
  Status s = workload.Load();
  if (!s.ok()) {
    fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 0;
  }
  std::vector<Random> rngs;
  for (int i = 0; i < clients; ++i) rngs.emplace_back(500 + i);

  cluster.env()->clock()->UnregisterActor();
  workload::LoadResult result = workload::RunClosedLoop(
      cluster.env(), clients, 60 * kMillisecond, 300 * kMillisecond,
      [&](int c) {
        return single_insert ? workload.RunSingleInsert(&rngs[c])
                             : workload.RunOrderTransaction(&rngs[c]);
      });
  cluster.env()->clock()->RegisterActor();
  const double tps = result.Throughput();
  cluster.env()->clock()->UnregisterActor();
  cluster.Shutdown();
  return tps;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  const std::vector<int> clients = {8, 16, 64};

  bench::PrintHeader("Figure 8a: single INSERT (2KB rows), TPS vs clients");
  bench::PrintRow({"clients", "veDB (SSD log)", "veDB+AStore", "speedup"});
  for (int c : clients) {
    const double ssd = RunOrders(false, c, /*single_insert=*/true);
    const double pmem = RunOrders(true, c, /*single_insert=*/true);
    bench::PrintRow({std::to_string(c), bench::Fmt("%.0f", ssd),
                     bench::Fmt("%.0f", pmem),
                     bench::Fmt("%.2fx", ssd > 0 ? pmem / ssd : 0)});
  }
  printf("paper: with 8 clients, 3,339 TPS -> 10,000+ TPS (>3x)\n");

  bench::PrintHeader(
      "Figure 8b: order-processing transaction (hot-row update + batch "
      "insert), TPS vs clients");
  bench::PrintRow({"clients", "veDB (SSD log)", "veDB+AStore", "speedup"});
  for (int c : clients) {
    const double ssd = RunOrders(false, c, /*single_insert=*/false);
    const double pmem = RunOrders(true, c, /*single_insert=*/false);
    bench::PrintRow({std::to_string(c), bench::Fmt("%.0f", ssd),
                     bench::Fmt("%.0f", pmem),
                     bench::Fmt("%.2fx", ssd > 0 ? pmem / ssd : 0)});
  }
  printf(
      "paper: AStore reaches the 10k TPS target with 64 clients; stock veDB "
      "needs >512\n");
  return 0;
}
