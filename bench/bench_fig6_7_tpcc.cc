// Figures 6 & 7 reproduction: TPC-C throughput and P95/P99 latency versus
// client count, with the SSD LogStore (stock veDB) and with AStore.
// Paper: peak 68,000 TPS without AStore (at 128 clients) vs ~90,000 TPS
// with AStore (at 64 clients), +30%; P95 latency reduced by up to 50%.
// Absolute numbers differ at simulation scale; who wins, the ~1.3x gap at
// the peak, and AStore peaking at a lower client count are the shape under
// test. (The sweep stops at 128 clients to keep single-core wall time
// reasonable; the paper's stock-veDB curve keeps growing to 512.)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace vedb {
namespace {

struct Point {
  int clients;
  double tps;
  double p95_ms;
  double p99_ms;
};

std::vector<Point> RunSweep(bool use_astore,
                            const std::vector<int>& client_counts) {
  std::vector<Point> points;
  for (int clients : client_counts) {
    workload::ClusterOptions opts =
        bench::MakeClusterOptions(use_astore, 0, /*seed=*/2023);
    workload::VedbCluster cluster(opts);
    cluster.StartBackground();
    cluster.env()->clock()->RegisterActor();

    workload::TpccScale scale;
    scale.warehouses = 24;  // enough warehouses that hot rows do not bind
    scale.customers_per_district = 30;
    scale.items = 300;
    scale.initial_orders_per_district = 10;
    workload::TpccDatabase db(cluster.engine(), scale, 7);
    Status load = db.Load();
    if (!load.ok()) {
      fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
      return points;
    }

    std::vector<std::unique_ptr<workload::TpccDriver>> drivers;
    for (int i = 0; i < clients; ++i) {
      drivers.push_back(
          std::make_unique<workload::TpccDriver>(&db, 1000 + i));
    }
    cluster.env()->clock()->UnregisterActor();
    workload::LoadResult result = workload::RunClosedLoop(
        cluster.env(), clients, /*warmup=*/100 * kMillisecond,
        /*duration=*/600 * kMillisecond,
        [&](int c) { return drivers[c]->RunMixed(nullptr); });
    cluster.env()->clock()->RegisterActor();

    Point p;
    p.clients = clients;
    p.tps = result.Throughput();
    p.p95_ms = result.latency.P95() / 1e6;
    p.p99_ms = result.latency.P99() / 1e6;
    points.push_back(p);

    cluster.env()->clock()->UnregisterActor();
    cluster.Shutdown();
  }
  return points;
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  const std::vector<int> clients = {1, 4, 8, 16, 32, 64, 128};
  auto stock = RunSweep(/*use_astore=*/false, clients);
  auto astore = RunSweep(/*use_astore=*/true, clients);

  bench::PrintHeader("Figure 6: TPC-C throughput (TPS) vs clients");
  bench::PrintRow({"clients", "veDB (SSD log)", "veDB+AStore", "speedup"});
  double peak_stock = 0, peak_astore = 0;
  for (size_t i = 0; i < stock.size(); ++i) {
    peak_stock = std::max(peak_stock, stock[i].tps);
    peak_astore = std::max(peak_astore, astore[i].tps);
    bench::PrintRow({std::to_string(stock[i].clients),
                     bench::Fmt("%.0f", stock[i].tps),
                     bench::Fmt("%.0f", astore[i].tps),
                     bench::Fmt("%.2fx", astore[i].tps / stock[i].tps)});
  }
  printf("peak: %.0f vs %.0f TPS (+%.0f%%; paper: 68k vs 90k, +30%%)\n",
         peak_stock, peak_astore, 100.0 * (peak_astore / peak_stock - 1));

  bench::PrintHeader("Figure 7: TPC-C P95/P99 latency (ms) vs clients");
  bench::PrintRow({"clients", "P95 SSD", "P95 AStore", "P99 SSD",
                   "P99 AStore"});
  for (size_t i = 0; i < stock.size(); ++i) {
    bench::PrintRow({std::to_string(stock[i].clients),
                     bench::Fmt("%.2f", stock[i].p95_ms),
                     bench::Fmt("%.2f", astore[i].p95_ms),
                     bench::Fmt("%.2f", stock[i].p99_ms),
                     bench::Fmt("%.2f", astore[i].p99_ms)});
  }
  printf("paper: P95 reduced by up to 50%% (most at 32 clients)\n");
  return 0;
}
