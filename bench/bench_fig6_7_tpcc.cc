// Figures 6 & 7 reproduction: TPC-C throughput and P95/P99 latency versus
// client count, with the SSD LogStore (stock veDB) and with AStore.
// Paper: peak 68,000 TPS without AStore (at 128 clients) vs ~90,000 TPS
// with AStore (at 64 clients), +30%; P95 latency reduced by up to 50%.
// Absolute numbers differ at simulation scale; who wins, the ~1.3x gap at
// the peak, and AStore peaking at a lower client count are the shape under
// test. (The sweep stops at 128 clients to keep single-core wall time
// reasonable; the paper's stock-veDB curve keeps growing to 512.)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace vedb {
namespace {

struct Point {
  int clients;
  double tps;
  double p95_ms;
  double p99_ms;
};

std::vector<Point> RunSweep(bool use_astore,
                            const std::vector<int>& client_counts,
                            std::vector<obs::Snapshot>* snapshots) {
  std::vector<Point> points;
  for (int clients : client_counts) {
    workload::ClusterOptions opts =
        bench::MakeClusterOptions(use_astore, 0, /*seed=*/2023);
    workload::VedbCluster cluster(opts);
    // Register main before any background actors exist so the setup phase
    // runs under the scheduler's run token (deterministic tick counts).
    cluster.env()->clock()->RegisterActor();
    cluster.StartBackground();

    workload::TpccScale scale;
    scale.warehouses = 24;  // enough warehouses that hot rows do not bind
    scale.customers_per_district = 30;
    scale.items = 300;
    scale.initial_orders_per_district = 10;
    workload::TpccDatabase db(cluster.engine(), scale, 7);
    Status load = db.Load();
    if (!load.ok()) {
      fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
      return points;
    }

    std::vector<std::unique_ptr<workload::TpccDriver>> drivers;
    for (int i = 0; i < clients; ++i) {
      drivers.push_back(
          std::make_unique<workload::TpccDriver>(&db, 1000 + i));
    }
    cluster.env()->clock()->UnregisterActor();
    workload::LoadResult result = workload::RunClosedLoop(
        cluster.env(), clients, /*warmup=*/100 * kMillisecond,
        /*duration=*/600 * kMillisecond,
        [&](int c) { return drivers[c]->RunMixed(nullptr); });
    cluster.env()->clock()->RegisterActor();

    // Report latency from the registry (RunClosedLoop mirrors its run into
    // workload.txn_latency_ns), and keep the whole per-config snapshot for
    // the results/ export.
    obs::Snapshot snap = bench::CollectRunSnapshot(
        cluster.env(),
        std::string("tpcc/") + (use_astore ? "pmem" : "ssd") +
            "/clients=" + std::to_string(clients));
    const auto* lat = snap.FindHistogram("workload.txn_latency_ns");

    Point p;
    p.clients = clients;
    p.tps = result.Throughput();
    p.p95_ms = bench::P95Ms(lat);
    p.p99_ms = bench::P99Ms(lat);
    points.push_back(p);
    if (snapshots != nullptr) snapshots->push_back(std::move(snap));

    cluster.Shutdown();
    cluster.env()->clock()->UnregisterActor();
  }
  return points;
}

}  // namespace
}  // namespace vedb

int main(int argc, char** argv) {
  using namespace vedb;
  // Optional CLI cap on the largest client count (CI smoke runs "8").
  const int max_clients = bench::ArgInt(argc, argv, 128);
  std::vector<int> clients;
  for (int c : {1, 4, 8, 16, 32, 64, 128}) {
    if (c <= max_clients) clients.push_back(c);
  }
  std::vector<obs::Snapshot> snapshots;
  auto stock = RunSweep(/*use_astore=*/false, clients, &snapshots);
  auto astore = RunSweep(/*use_astore=*/true, clients, &snapshots);

  bench::PrintHeader("Figure 6: TPC-C throughput (TPS) vs clients");
  bench::PrintRow({"clients", "veDB (SSD log)", "veDB+AStore", "speedup"});
  double peak_stock = 0, peak_astore = 0;
  for (size_t i = 0; i < stock.size(); ++i) {
    peak_stock = std::max(peak_stock, stock[i].tps);
    peak_astore = std::max(peak_astore, astore[i].tps);
    bench::PrintRow({std::to_string(stock[i].clients),
                     bench::Fmt("%.0f", stock[i].tps),
                     bench::Fmt("%.0f", astore[i].tps),
                     bench::Fmt("%.2fx", astore[i].tps / stock[i].tps)});
  }
  printf("peak: %.0f vs %.0f TPS (+%.0f%%; paper: 68k vs 90k, +30%%)\n",
         peak_stock, peak_astore, 100.0 * (peak_astore / peak_stock - 1));

  bench::PrintHeader("Figure 7: TPC-C P95/P99 latency (ms) vs clients");
  bench::PrintRow({"clients", "P95 SSD", "P95 AStore", "P99 SSD",
                   "P99 AStore"});
  for (size_t i = 0; i < stock.size(); ++i) {
    bench::PrintRow({std::to_string(stock[i].clients),
                     bench::Fmt("%.2f", stock[i].p95_ms),
                     bench::Fmt("%.2f", astore[i].p95_ms),
                     bench::Fmt("%.2f", stock[i].p99_ms),
                     bench::Fmt("%.2f", astore[i].p99_ms)});
  }
  printf("paper: P95 reduced by up to 50%% (most at 32 clients)\n");

  std::string sweep = "\"sweep\":[";
  for (size_t i = 0; i < stock.size(); ++i) {
    if (i > 0) sweep += ",";
    sweep += "{\"clients\":" + std::to_string(stock[i].clients) +
             ",\"tps_ssd\":" + bench::Fmt("%.0f", stock[i].tps) +
             ",\"tps_pmem\":" + bench::Fmt("%.0f", astore[i].tps) + "}";
  }
  sweep += "]";
  Status wrote = bench::WriteBenchResults("bench_fig6_7_tpcc",
                                          "bench_fig6_7_tpcc.json", snapshots,
                                          {sweep});
  if (!wrote.ok()) {
    fprintf(stderr, "results export failed: %s\n", wrote.ToString().c_str());
    return 1;
  }
  printf("metrics snapshot: results/bench_fig6_7_tpcc.json\n");
  return 0;
}
