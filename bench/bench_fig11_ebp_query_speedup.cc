// Figure 11 reproduction: per-query speedup from the extended buffer pool
// on a subset of TPC-CH analytical queries, at two buffer-pool sizes.
// Paper (1000 warehouses; 16GB & 32GB BPs; 256GB EBP): query 7 gains >3x in
// both settings, query 16 barely changes (its working set fits the BP);
// others gain up to 3.5x. Each query runs once to warm up, then the average
// of three timed runs is reported.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workload/tpcc.h"
#include "workload/tpcch.h"

namespace vedb {
namespace {

// Queries shown in the paper's Figure 11 selection (elapsed < 1000s there).
const int kQueries[] = {1, 4, 6, 7, 11, 12, 14, 16, 19, 22};

struct QueryTiming {
  double elapsed_ms[2];  // [bp_config] with EBP disabled
  double ebp_ms[2];      // [bp_config] with EBP enabled
};

double TimeQuery(workload::TpccDatabase* db, workload::VedbCluster* cluster,
                 int q) {
  query::ExecContext ctx;
  ctx.engine = cluster->engine();
  // Warm-up run, then three timed runs (paper's procedure).
  // discard-ok: warm-up run; only the timed runs below are reported.
  (void)workload::RunChQuery(q, db, &ctx, false);
  Duration total = 0;
  for (int run = 0; run < 3; ++run) {
    const Timestamp t0 = cluster->env()->clock()->Now();
    auto r = workload::RunChQuery(q, db, &ctx, false);
    if (!r.ok()) fprintf(stderr, "Q%d: %s\n", q, r.status().ToString().c_str());
    total += cluster->env()->clock()->Now() - t0;
  }
  return ToMillis(total / 3);
}

void RunConfig(size_t bp_pages, bool enable_ebp, double out_ms[]) {
  workload::ClusterOptions opts =
      bench::MakeClusterOptions(true, enable_ebp ? 128 * kMiB : 0);
  opts.engine.buffer_pool.capacity_pages = bp_pages;
  workload::VedbCluster cluster(opts);
  cluster.StartBackground();
  cluster.env()->clock()->RegisterActor();

  workload::TpccScale scale;
  scale.warehouses = 4;
  scale.customers_per_district = 80;
  scale.items = 500;
  scale.initial_orders_per_district = 60;
  workload::TpccDatabase db(cluster.engine(), scale, 9, /*ch=*/true);
  Status s = db.Load();
  if (!s.ok()) fprintf(stderr, "load: %s\n", s.ToString().c_str());

  int idx = 0;
  for (int q : kQueries) {
    out_ms[idx++] = TimeQuery(&db, &cluster, q);
  }
  cluster.env()->clock()->UnregisterActor();
  cluster.Shutdown();
}

}  // namespace
}  // namespace vedb

int main() {
  using namespace vedb;
  const int kN = sizeof(kQueries) / sizeof(kQueries[0]);
  // Two BP sizes (the paper's 16GB and 32GB, scaled): small & medium.
  const size_t kBpSmall = 24, kBpMedium = 64;

  double base_small[kN], ebp_small[kN], base_medium[kN], ebp_medium[kN];
  RunConfig(kBpSmall, false, base_small);
  RunConfig(kBpSmall, true, ebp_small);
  RunConfig(kBpMedium, false, base_medium);
  RunConfig(kBpMedium, true, ebp_medium);

  bench::PrintHeader(
      "Figure 11: EBP speedup on TPC-CH queries (elapsed no-EBP / EBP)");
  bench::PrintRow({"query", "BP=small", "BP=medium", "no-EBP ms (small)",
                   "EBP ms (small)"},
                  18);
  double geo_small = 1;
  for (int i = 0; i < kN; ++i) {
    const double s_small = base_small[i] / ebp_small[i];
    const double s_medium = base_medium[i] / ebp_medium[i];
    geo_small *= s_small;
    bench::PrintRow({"Q" + std::to_string(kQueries[i]),
                     bench::Fmt("%.2fx", s_small),
                     bench::Fmt("%.2fx", s_medium),
                     bench::Fmt("%.1f", base_small[i]),
                     bench::Fmt("%.1f", ebp_small[i])},
                    18);
  }
  printf("\ngeomean speedup (small BP): %.2fx\n",
         std::pow(geo_small, 1.0 / kN));
  printf("paper: Q7 >3x in both settings; Q16 ~1x (working set fits BP); "
         "up to 3.5x elsewhere\n");
  return 0;
}
